package ibp

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/netx"
	"repro/internal/wire"
)

// scriptServer accepts connections and answers every request line with the
// next canned response, exercising the client's parsing without a real
// depot.
func scriptServer(t *testing.T, responses ...string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		next := 0
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				conn := wire.NewConn(raw)
				for {
					if _, err := conn.ReadLine(); err != nil {
						return
					}
					resp := "OK"
					if next < len(responses) {
						resp = responses[next]
						next++
					}
					if err := conn.WriteLine(strings.Fields(resp)...); err != nil {
						return
					}
				}
			}(raw)
		}
	}()
	return ln.Addr().String()
}

func testCaps(addr string) (src Cap, dsts []Cap) {
	set := MintSet([]byte("client-test"), addr, strings.Repeat("ab", KeyLen))
	other := MintSet([]byte("client-test"), addr, strings.Repeat("cd", KeyLen))
	third := MintSet([]byte("client-test"), addr, strings.Repeat("ef", KeyLen))
	return set.Read, []Cap{set.Write, other.Write, third.Write}
}

func TestMCopyPartialFailureOrderPreserved(t *testing.T) {
	// The depot reports per-destination results; failed slots carry -1 and
	// MUST stay in request order so callers can match them to their caps.
	addr := scriptServer(t, "OK 4096 -1 4096")
	src, dsts := testCaps(addr)
	c := NewClient()
	res, err := c.MCopy(src, 0, 4096, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0] != 4096 || res[1] != -1 || res[2] != 4096 {
		t.Fatalf("results = %v, want [4096 -1 4096]", res)
	}
}

func TestMCopyAllDestinationsFailed(t *testing.T) {
	addr := scriptServer(t, "OK -1 -1 -1")
	src, dsts := testCaps(addr)
	res, err := NewClient().MCopy(src, 0, 10, dsts)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != -1 {
			t.Fatalf("slot %d = %d, want -1", i, v)
		}
	}
}

func TestMCopyResultCountMismatch(t *testing.T) {
	addr := scriptServer(t, "OK 10 10")
	src, dsts := testCaps(addr)
	if _, err := NewClient().MCopy(src, 0, 10, dsts); err == nil {
		t.Fatal("short result list should error")
	}
}

func TestMCopySourceReadFailure(t *testing.T) {
	addr := scriptServer(t, "ERR NOT_FOUND missing")
	src, dsts := testCaps(addr)
	_, err := NewClient().MCopy(src, 0, 10, dsts)
	if !wire.IsRemote(err, wire.CodeNotFound) {
		t.Fatalf("err = %v, want remote NOT_FOUND", err)
	}
}

func TestClientConsultsBreakerBeforeDialing(t *testing.T) {
	sb := health.New(health.Config{FailureThreshold: 2, BaseBackoff: time.Hour, Seed: 1})
	dials := 0
	c := NewClient(
		ibpWithCountingDialer(&dials),
		WithHealth(sb),
		WithDialTimeout(50*time.Millisecond),
	)
	addr := "203.0.113.7:6714"
	for i := 0; i < 2; i++ {
		if _, err := c.Status(addr); err == nil {
			t.Fatal("dial should fail")
		}
	}
	if dials != 2 {
		t.Fatalf("dials before trip = %d, want 2", dials)
	}
	if st, _ := sb.State(addr); st != health.StateOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// Third attempt fails fast without touching the dialer.
	_, err := c.Status(addr)
	if !errors.Is(err, health.ErrCircuitOpen) {
		t.Fatalf("err = %v, want circuit open", err)
	}
	if dials != 2 {
		t.Fatalf("open circuit still dialed (%d dials)", dials)
	}
}

func TestClientReportsSuccessOutcomes(t *testing.T) {
	addr := scriptServer(t, "OK 100 0 3600 4")
	sb := health.New(health.Config{Seed: 1})
	c := NewClient(WithHealth(sb))
	if _, err := c.Status(addr); err != nil {
		t.Fatal(err)
	}
	snap := sb.Snapshot()
	if len(snap) != 1 || snap[0].Successes != 1 || snap[0].State != health.StateClosed {
		t.Fatalf("snapshot after success: %+v", snap)
	}
	if snap[0].Latency.N != 1 {
		t.Fatalf("success latency not recorded: %+v", snap[0].Latency)
	}
}

func TestClientReportsProtocolErrorAsReachable(t *testing.T) {
	addr := scriptServer(t, "ERR NOT_FOUND gone", "ERR NOT_FOUND gone", "ERR NOT_FOUND gone", "ERR NOT_FOUND gone")
	sb := health.New(health.Config{FailureThreshold: 2, Seed: 1})
	c := NewClient(WithHealth(sb))
	m := MintCap([]byte("s"), addr, strings.Repeat("11", KeyLen), CapManage)
	for i := 0; i < 4; i++ {
		if _, err := c.Probe(m); err == nil {
			t.Fatal("probe should report the remote error")
		}
	}
	if st, _ := sb.State(addr); st != health.StateClosed {
		t.Fatal("remote errors must not trip the breaker: depot is reachable")
	}
	if snap := sb.Snapshot(); snap[0].ProtocolErrors != 4 {
		t.Fatalf("protocol errors = %d, want 4", snap[0].ProtocolErrors)
	}
}

// ibpWithCountingDialer counts dial attempts and always fails.
func ibpWithCountingDialer(n *int) Option {
	return WithDialer(netx.DialerFunc(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		*n++
		return nil, &net.OpError{Op: "dial", Net: network, Err: errors.New("unreachable")}
	}))
}
