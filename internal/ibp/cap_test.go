package ibp

import (
	"strings"
	"testing"
	"testing/quick"
)

var secret = []byte("cap-test-secret")

func TestMintParseRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []CapType{CapRead, CapWrite, CapManage} {
		c := MintCap(secret, "depot.utk.edu:6714", key, typ)
		parsed, err := ParseCap(c.String())
		if err != nil {
			t.Fatalf("ParseCap(%q): %v", c.String(), err)
		}
		if parsed != c {
			t.Fatalf("round trip: %+v != %+v", parsed, c)
		}
		if !VerifyCap(secret, parsed) {
			t.Fatal("minted cap should verify")
		}
	}
}

func TestVerifyRejectsForgery(t *testing.T) {
	key, _ := NewKey()
	c := MintCap(secret, "h:1", key, CapRead)

	bad := c
	bad.Tag = strings.Repeat("0", TagLen*2)
	if VerifyCap(secret, bad) {
		t.Fatal("zero tag should not verify")
	}

	// A READ tag is not valid for WRITE: possession of one capability must
	// not grant the others (paper §2.1).
	cross := c
	cross.Type = CapWrite
	if VerifyCap(secret, cross) {
		t.Fatal("cap type crossover should not verify")
	}

	// Different secret, different depot.
	if VerifyCap([]byte("other"), c) {
		t.Fatal("cap should not verify under another depot's secret")
	}

	// Invalid type never verifies.
	weird := c
	weird.Type = CapType("ROOT")
	if VerifyCap(secret, weird) {
		t.Fatal("unknown type should not verify")
	}
}

func TestMintSet(t *testing.T) {
	key, _ := NewKey()
	set := MintSet(secret, "h:1", key)
	if set.Read.Type != CapRead || set.Write.Type != CapWrite || set.Manage.Type != CapManage {
		t.Fatalf("set types wrong: %+v", set)
	}
	for _, c := range []Cap{set.Read, set.Write, set.Manage} {
		if c.Key != key || c.Addr != "h:1" || !VerifyCap(secret, c) {
			t.Fatalf("bad cap in set: %+v", c)
		}
	}
	// The three tags must all differ.
	if set.Read.Tag == set.Write.Tag || set.Write.Tag == set.Manage.Tag || set.Read.Tag == set.Manage.Tag {
		t.Fatal("capability tags should be distinct per type")
	}
}

func TestParseCapErrors(t *testing.T) {
	key, _ := NewKey()
	good := MintCap(secret, "h:1", key, CapRead).String()
	bad := []string{
		"",
		"http://h:1/k/READ#t",
		strings.Replace(good, "#", "!", 1),
		strings.Replace(good, "READ", "EXECUTE", 1),
		"ibp://h:1/shortkey/READ#" + strings.Repeat("ab", TagLen),
		"ibp://noport/" + key + "/READ#" + strings.Repeat("ab", TagLen),
		"ibp://h:1/" + key + "/READ#zz",
		"ibp://h:1/" + key + "/READ/extra#" + strings.Repeat("ab", TagLen),
	}
	for _, s := range bad {
		if _, err := ParseCap(s); err == nil {
			t.Fatalf("ParseCap(%q) should fail", s)
		}
	}
}

func TestTokenRoundTrip(t *testing.T) {
	key, _ := NewKey()
	c := MintCap(secret, "h:1", key, CapManage)
	got, err := ParseToken("h:1", c.Token())
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("token round trip: %+v != %+v", got, c)
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		k, err := NewKey()
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatal("duplicate key from NewKey")
		}
		seen[k] = true
		if len(k) != KeyLen*2 {
			t.Fatalf("key length %d", len(k))
		}
	}
}

func TestCapStringNeverContainsWhitespaceProperty(t *testing.T) {
	// Capabilities travel as single wire tokens; they must never contain
	// whitespace regardless of inputs.
	f := func(addrSuffix uint16) bool {
		key, err := NewKey()
		if err != nil {
			return false
		}
		c := MintCap(secret, "host:1", key, CapRead)
		_ = addrSuffix
		return !strings.ContainsAny(c.String(), " \t\n\r")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	var c Cap
	if !c.IsZero() {
		t.Fatal("zero cap should report IsZero")
	}
	key, _ := NewKey()
	if MintCap(secret, "h:1", key, CapRead).IsZero() {
		t.Fatal("minted cap should not be zero")
	}
}
