package ibp

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/health"
	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Client is the IBP client library. The zero value is not usable; call
// NewClient. A Client is safe for concurrent use: each operation opens its
// own connection, matching the original IBP library's per-call model.
type Client struct {
	dialer      netx.Dialer
	clock       vclock.Clock
	dialTimeout time.Duration
	opTimeout   time.Duration
	pool        *connPool
	health      *health.Scoreboard
	obs         obs.Observer
	span        obs.SpanContext // parent span for this client's operations
	traces      *traceSupport   // per-depot TRACE support cache, shared across WithSpan copies
	batches     *traceSupport   // per-depot BATCH support cache (same negotiate-once model)
}

// traceSupport remembers which depots rejected the TRACE verb, so a client
// pays the extra negotiation round trip at most once per old depot.
type traceSupport struct {
	mu          sync.Mutex
	unsupported map[string]bool
}

func (t *traceSupport) allowed(addr string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.unsupported[addr]
}

func (t *traceSupport) markUnsupported(addr string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.unsupported[addr] = true
	t.mu.Unlock()
}

// Option configures a Client.
type Option func(*Client)

// WithDialer sets the dialer (default: the system network stack).
func WithDialer(d netx.Dialer) Option { return func(c *Client) { c.dialer = d } }

// WithClock sets the clock used for deadlines (default: real time).
func WithClock(ck vclock.Clock) Option { return func(c *Client) { c.clock = ck } }

// WithDialTimeout bounds connection establishment (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(c *Client) { c.dialTimeout = d } }

// WithOpTimeout bounds a single protocol exchange (default 30s). The
// download tool relies on this to fail over between replicas.
func WithOpTimeout(d time.Duration) Option { return func(c *Client) { c.opTimeout = d } }

// WithHealth attaches a depot health scoreboard: every operation outcome
// is reported to it, and its circuit breaker is consulted before dialing —
// requests to an open-circuit depot fail fast with an error matching
// health.ErrCircuitOpen instead of paying dial and op timeouts. Share one
// scoreboard across the clients and tools of a process.
func WithHealth(sb *health.Scoreboard) Option { return func(c *Client) { c.health = sb } }

// Health returns the attached scoreboard, or nil.
func (c *Client) Health() *health.Scoreboard { return c.health }

// WithObserver attaches an operation-event sink: every IBP operation emits
// one obs.Event (verb, depot, bytes, latency, outcome, pool-reuse/retry
// flags) as it completes. Use an obs.Collector to keep recent events and
// per-depot/per-verb aggregates.
func WithObserver(o obs.Observer) Option { return func(c *Client) { c.obs = o } }

// Observer returns the attached event sink, or nil.
func (c *Client) Observer() obs.Observer { return c.obs }

// WithSpan returns a client whose operations run under the given span:
// sampled contexts are propagated to depots over the wire (via the TRACE
// verb, when the depot supports it) and stamped onto emitted events, with
// sc as the parent span. The returned client shares this client's pool,
// scoreboard, observer, and trace-support cache — deriving one per extent
// is cheap.
func (c *Client) WithSpan(sc obs.SpanContext) *Client {
	c2 := *c
	c2.span = sc
	return &c2
}

// Span returns the client's current span context (zero when untraced).
func (c *Client) Span() obs.SpanContext { return c.span }

// NewClient builds a client with the given options.
func NewClient(opts ...Option) *Client {
	c := &Client{
		dialer:      netx.System(),
		clock:       vclock.Real(),
		dialTimeout: 5 * time.Second,
		opTimeout:   30 * time.Second,
		traces:      &traceSupport{unsupported: make(map[string]bool)},
		batches:     &traceSupport{unsupported: make(map[string]bool)},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// dialFresh opens a new connection to addr with the operation deadline
// applied.
func (c *Client) dialFresh(addr string) (*wire.Conn, error) {
	raw, err := c.dialer.Dial("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("ibp: dial %s: %w", addr, err)
	}
	if err := netx.SetOpDeadline(raw, c.clock.Now(), c.opTimeout); err != nil {
		raw.Close()
		return nil, fmt.Errorf("ibp: set deadline: %w", err)
	}
	if c.pool != nil {
		// The connection will be parked for reuse: pay for the large
		// transfer buffers once and amortize them over many operations.
		return wire.NewLongConn(raw), nil
	}
	return wire.NewConn(raw), nil
}

// applyDeadline refreshes the operation deadline on a pooled connection.
// It must go through netx.SetOpDeadline with the client's own clock: on a
// simulated link the deadline that matters is the virtual one, and a plain
// wall-clock SetDeadline would silently ignore WithClock on every
// pool-reuse path.
func (c *Client) applyDeadline(conn *wire.Conn) error {
	return netx.SetOpDeadline(conn.NetConn(), c.clock.Now(), c.opTimeout)
}

// ErrCancelled reports that an operation was abandoned on purpose — its
// hedged sibling won the race — rather than failing. Cancelled operations
// are not reported to the health scoreboard (a depot must not be penalised
// because a faster replica existed) and are never retried on a fresh dial.
var ErrCancelled = errors.New("ibp: operation cancelled")

// withConn runs one protocol exchange on a pooled or fresh connection,
// retrying once on a fresh dial when a reused connection turns out stale.
// op must be safe to re-run from scratch (all client exchanges are: they
// buffer their own output). With a scoreboard attached, the depot's
// circuit breaker is consulted first and the exchange's final outcome is
// reported back. With an observer attached, one event is emitted per
// operation; bytes is the payload size credited to a successful exchange.
func (c *Client) withConn(verb, addr string, bytes int64, retryable bool, op func(conn *wire.Conn) error) error {
	return c.withConnCancel(verb, addr, bytes, retryable, nil, op)
}

// withConnCancel is withConn with an optional cancel channel. When cancel
// fires mid-exchange the connection is closed out from under the operation
// (unblocking any pending read) and the error collapses to ErrCancelled;
// health reporting is skipped for cancelled exchanges and the observer sees
// outcome "cancelled". A nil cancel behaves exactly like withConn.
func (c *Client) withConnCancel(verb, addr string, bytes int64, retryable bool, cancel <-chan struct{}, op func(conn *wire.Conn) error) error {
	start := c.clock.Now()
	traced := c.span.Sampled && c.span.Valid()
	var opSpan, serverTrailer string
	if traced {
		opSpan = obs.NewSpanID()
		inner := op
		op = func(conn *wire.Conn) error {
			if err := c.sendTrace(conn, addr, opSpan); err != nil {
				return err
			}
			err := inner(conn)
			// Grab the depot's span summary before the connection returns to
			// the pool, and disarm capture so an untraced op reusing the
			// pooled connection is not surprised by leftover state.
			serverTrailer = conn.StatusTrailer()
			conn.CaptureStatusTrailer("")
			return err
		}
	}
	if cancel != nil {
		select {
		case <-cancel:
			return ErrCancelled
		default:
		}
		inner := op
		op = func(conn *wire.Conn) error {
			stop := make(chan struct{})
			done := make(chan struct{})
			killed := false
			go func() {
				defer close(done)
				select {
				case <-cancel:
					killed = true
					conn.Close()
				case <-stop:
				}
			}()
			err := inner(conn)
			close(stop)
			<-done
			if killed {
				// Even a completed exchange is discarded: the race already
				// has a winner, and the closed conn must not be pooled.
				return ErrCancelled
			}
			return err
		}
	}
	if c.health != nil {
		if err := c.health.Allow(addr); err != nil {
			if c.obs != nil {
				ev := obs.Event{
					Time: start, Verb: verb, Depot: addr,
					Outcome: "circuit-open", Err: err.Error(),
				}
				c.stampTrace(&ev, opSpan, "")
				c.obs.Record(ev)
			}
			return err
		}
	}
	reused, retried, err := c.exchange(addr, retryable, op)
	elapsed := c.clock.Since(start)
	cancelled := errors.Is(err, ErrCancelled)
	if c.health != nil && !cancelled {
		c.health.Report(addr, health.Classify(err), elapsed)
	}
	if c.obs != nil {
		ev := obs.Event{
			Time: start, Verb: verb, Depot: addr, Latency: elapsed,
			Outcome: health.Classify(err).String(),
			Reused:  reused, Retried: retried,
		}
		if cancelled {
			ev.Outcome = "cancelled"
		}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.Bytes = bytes
		}
		c.stampTrace(&ev, opSpan, serverTrailer)
		c.obs.Record(ev)
	}
	return err
}

// sendTrace propagates the client's span to the depot ahead of the real
// operation: "TRACE <traceid> <opspan> 1". A depot that predates the verb
// answers ERR UNSUPPORTED; the rejection is cached per address and the
// exchange proceeds untraced on the same connection (unknown verbs do not
// poison it). On acceptance, trailer capture is armed so the depot's
// server-span token comes back on the operation's own status line.
func (c *Client) sendTrace(conn *wire.Conn, addr, opSpan string) error {
	if !c.traces.allowed(addr) {
		return nil
	}
	if err := conn.WriteLine(OpTrace, c.span.TraceID, opSpan, "1"); err != nil {
		return err
	}
	if _, err := conn.ReadStatus(); err != nil {
		if wire.IsRemote(err, wire.CodeUnsupported) {
			c.traces.markUnsupported(addr)
			return nil
		}
		return err
	}
	conn.CaptureStatusTrailer(obs.TrailerPrefix)
	return nil
}

// stampTrace fills an event's trace-correlation fields when the client is
// operating under a sampled span.
func (c *Client) stampTrace(ev *obs.Event, opSpan, serverTrailer string) {
	if !(c.span.Sampled && c.span.Valid()) {
		return
	}
	ev.Trace = c.span.TraceID
	ev.Span = opSpan
	ev.Parent = c.span.SpanID
	if ws, ok := obs.ParseWireSpan(serverTrailer); ok {
		ev.Server = &ws
	}
}

// exchange is withConn without the health or event bookkeeping. It reports
// whether the exchange ran on a pooled connection and whether it was
// retried on a fresh dial.
func (c *Client) exchange(addr string, retryable bool, op func(conn *wire.Conn) error) (reused, retried bool, err error) {
	conn, reused, err := c.acquire(addr)
	if err != nil {
		return reused, false, err
	}
	err = op(conn)
	if err != nil && reused && retryable && isConnReuseError(err) {
		conn.Close()
		fresh, derr := c.dialFresh(addr)
		if derr != nil {
			return reused, false, err
		}
		err = op(fresh)
		c.release(addr, fresh, err)
		return reused, true, err
	}
	c.release(addr, conn, err)
	return reused, false, err
}

// Allocate requests a byte array of up to maxSize bytes for duration on the
// depot at addr, returning the capability trio.
func (c *Client) Allocate(addr string, maxSize int64, duration time.Duration, rel Reliability) (CapSet, error) {
	if maxSize <= 0 {
		return CapSet{}, errors.New("ibp: allocation size must be positive")
	}
	if !ValidReliability(rel) {
		return CapSet{}, fmt.Errorf("ibp: bad reliability %q", rel)
	}
	var set CapSet
	err := c.withConn(OpAllocate, addr, 0, false, func(conn *wire.Conn) error {
		err := conn.WriteLine(OpAllocate, wire.Itoa(maxSize), wire.Itoa(int64(duration.Seconds())), string(rel))
		if err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 3 {
			return fmt.Errorf("ibp: allocate: want 3 caps, got %d", len(toks))
		}
		for i, dst := range []*Cap{&set.Read, &set.Write, &set.Manage} {
			cap, err := ParseCap(toks[i])
			if err != nil {
				return fmt.Errorf("ibp: allocate: %w", err)
			}
			*dst = cap
		}
		if set.Read.Type != CapRead || set.Write.Type != CapWrite || set.Manage.Type != CapManage {
			return errors.New("ibp: allocate: capability types out of order")
		}
		return nil
	})
	if err != nil {
		return CapSet{}, err
	}
	return set, nil
}

// Store appends data to the byte array named by the write capability and
// returns the new total length.
func (c *Client) Store(w Cap, data []byte) (int64, error) {
	if w.Type != CapWrite {
		return 0, fmt.Errorf("ibp: store requires a WRITE capability, got %s", w.Type)
	}
	var newLen int64
	// Store is append-only and therefore NOT idempotent: never retry it
	// on a stale pooled connection.
	err := c.withConn(OpStore, w.Addr, int64(len(data)), false, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpStore, w.Token(), wire.Itoa(int64(len(data)))); err != nil {
			return err
		}
		if err := conn.WriteBlob(data); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 2 {
			return fmt.Errorf("ibp: store: malformed response %v", toks)
		}
		newLen, err = wire.ParseInt("length", toks[1])
		return err
	})
	return newLen, err
}

// Load reads length bytes at offset from the byte array named by the read
// capability.
func (c *Client) Load(r Cap, offset, length int64) ([]byte, error) {
	return c.LoadCancel(r, offset, length, nil)
}

// LoadCancel is Load with a cancellation channel: when cancel fires before
// the exchange completes, the connection is torn down and the call returns
// an error matching ErrCancelled. The transfer engine uses this to abandon
// the losing side of a hedged read. A nil cancel is plain Load.
func (c *Client) LoadCancel(r Cap, offset, length int64, cancel <-chan struct{}) ([]byte, error) {
	var buf []byte
	// Load buffers internally, so a retry on a stale pooled connection is
	// safe (cancelled exchanges never retry: ErrCancelled is not a
	// conn-reuse error).
	err := c.load(r, offset, length, true, cancel, func(conn *wire.Conn, n int64) error {
		var err error
		buf, err = conn.ReadBlob(n)
		return err
	})
	return buf, err
}

// LoadInto reads len(dst) bytes at offset into the caller-owned dst,
// avoiding the per-call allocation of Load. The transfer and core layers
// pass pooled buffers here.
func (c *Client) LoadInto(dst []byte, r Cap, offset int64) error {
	return c.LoadIntoCancel(dst, r, offset, nil)
}

// LoadIntoCancel is LoadInto with a cancellation channel (see LoadCancel).
// dst is only valid once the call returns nil; a cancelled or failed call
// may have written any prefix of it.
func (c *Client) LoadIntoCancel(dst []byte, r Cap, offset int64, cancel <-chan struct{}) error {
	// Reading into dst is idempotent — a retry on a stale pooled connection
	// simply overwrites from the start — so the retry stays enabled.
	return c.load(r, offset, int64(len(dst)), true, cancel, func(conn *wire.Conn, n int64) error {
		return conn.ReadBlobInto(dst)
	})
}

// LoadTo streams length bytes at offset into w, for downloads that should
// not buffer whole extents in memory.
func (c *Client) LoadTo(dst io.Writer, r Cap, offset, length int64) (int64, error) {
	var n int64
	// LoadTo streams into dst, so a retry could duplicate bytes: never
	// retry.
	err := c.load(r, offset, length, false, nil, func(conn *wire.Conn, want int64) error {
		n = want
		return conn.CopyBlob(dst, want)
	})
	return n, err
}

func (c *Client) load(r Cap, offset, length int64, retryable bool, cancel <-chan struct{}, consume func(*wire.Conn, int64) error) error {
	if r.Type != CapRead {
		return fmt.Errorf("ibp: load requires a READ capability, got %s", r.Type)
	}
	if offset < 0 || length < 0 {
		return fmt.Errorf("ibp: load: negative offset or length")
	}
	return c.withConnCancel(OpLoad, r.Addr, length, retryable, cancel, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpLoad, r.Token(), wire.Itoa(offset), wire.Itoa(length)); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 1 {
			return fmt.Errorf("ibp: load: malformed response %v", toks)
		}
		n, err := wire.ParseInt("length", toks[0])
		if err != nil {
			return err
		}
		if n != length {
			return fmt.Errorf("ibp: load: depot returned %d bytes, want %d", n, length)
		}
		return consume(conn, n)
	})
}

// Probe returns the metadata of the allocation named by the manage
// capability.
func (c *Client) Probe(m Cap) (AllocInfo, error) {
	if m.Type != CapManage {
		return AllocInfo{}, fmt.Errorf("ibp: probe requires a MANAGE capability, got %s", m.Type)
	}
	var info AllocInfo
	err := c.withConn(OpProbe, m.Addr, 0, true, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpProbe, m.Token()); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 5 {
			return fmt.Errorf("ibp: probe: malformed response %v", toks)
		}
		if info.MaxSize, err = wire.ParseInt("maxsize", toks[0]); err != nil {
			return err
		}
		if info.Size, err = wire.ParseInt("size", toks[1]); err != nil {
			return err
		}
		exp, err := wire.ParseInt("expires", toks[2])
		if err != nil {
			return err
		}
		info.Expires = time.Unix(exp, 0).UTC()
		info.Reliability = Reliability(toks[3])
		ref, err := wire.ParseInt("refcount", toks[4])
		if err != nil {
			return err
		}
		info.RefCount = int(ref)
		return nil
	})
	if err != nil {
		return AllocInfo{}, err
	}
	return info, nil
}

// Extend pushes the allocation's expiration to now+duration (the Refresh
// tool uses this; paper §2.3). It returns the new expiration.
func (c *Client) Extend(m Cap, duration time.Duration) (time.Time, error) {
	if m.Type != CapManage {
		return time.Time{}, fmt.Errorf("ibp: extend requires a MANAGE capability, got %s", m.Type)
	}
	var out time.Time
	err := c.withConn(OpExtend, m.Addr, 0, true, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpExtend, m.Token(), wire.Itoa(int64(duration.Seconds()))); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 1 {
			return fmt.Errorf("ibp: extend: malformed response %v", toks)
		}
		exp, err := wire.ParseInt("expires", toks[0])
		if err != nil {
			return err
		}
		out = time.Unix(exp, 0).UTC()
		return nil
	})
	return out, err
}

// Delete decrements the allocation's reference count; the depot frees the
// byte array when it reaches zero. It returns the remaining count.
func (c *Client) Delete(m Cap) (int, error) {
	if m.Type != CapManage {
		return 0, fmt.Errorf("ibp: delete requires a MANAGE capability, got %s", m.Type)
	}
	var ref int64
	// Delete decrements a refcount: not idempotent, never retried.
	err := c.withConn(OpDelete, m.Addr, 0, false, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpDelete, m.Token()); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 1 {
			return fmt.Errorf("ibp: delete: malformed response %v", toks)
		}
		ref, err = wire.ParseInt("refcount", toks[0])
		return err
	})
	return int(ref), err
}

// Copy asks the depot holding src to transfer length bytes at offset
// directly into the allocation named by dst's WRITE capability — IBP's
// third-party transfer: the data moves depot-to-depot without passing
// through this client. It returns the destination's new length.
func (c *Client) Copy(src Cap, offset, length int64, dst Cap) (int64, error) {
	if src.Type != CapRead {
		return 0, fmt.Errorf("ibp: copy requires a READ source capability, got %s", src.Type)
	}
	if dst.Type != CapWrite {
		return 0, fmt.Errorf("ibp: copy requires a WRITE destination capability, got %s", dst.Type)
	}
	if offset < 0 || length < 0 {
		return 0, fmt.Errorf("ibp: copy: negative offset or length")
	}
	var newLen int64
	// Copy appends at the destination: not idempotent, never retried.
	err := c.withConn(OpCopy, src.Addr, length, false, func(conn *wire.Conn) error {
		err := conn.WriteLine(OpCopy, src.Token(), wire.Itoa(offset), wire.Itoa(length), dst.String())
		if err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 2 {
			return fmt.Errorf("ibp: copy: malformed response %v", toks)
		}
		newLen, err = wire.ParseInt("length", toks[1])
		return err
	})
	return newLen, err
}

// MCopy is the multicast form of Copy: one read on the source depot fans
// out to several destination allocations. It returns per-destination
// results in order ("ok" entries are the destinations' new lengths;
// failed destinations carry -1). The call errors only when the source
// read itself fails.
func (c *Client) MCopy(src Cap, offset, length int64, dsts []Cap) ([]int64, error) {
	if src.Type != CapRead {
		return nil, fmt.Errorf("ibp: mcopy requires a READ source capability, got %s", src.Type)
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("ibp: mcopy needs at least one destination")
	}
	toks := []string{OpMCopy, src.Token(), wire.Itoa(offset), wire.Itoa(length), wire.Itoa(int64(len(dsts)))}
	for _, d := range dsts {
		if d.Type != CapWrite {
			return nil, fmt.Errorf("ibp: mcopy destination must be WRITE, got %s", d.Type)
		}
		toks = append(toks, d.String())
	}
	var out []int64
	err := c.withConn(OpMCopy, src.Addr, length*int64(len(dsts)), false, func(conn *wire.Conn) error {
		if err := conn.WriteLine(toks...); err != nil {
			return err
		}
		res, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(res) != len(dsts) {
			return fmt.Errorf("ibp: mcopy: want %d results, got %d", len(dsts), len(res))
		}
		out = out[:0]
		for _, tok := range res {
			v, err := wire.ParseInt("result", tok)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		return nil
	})
	return out, err
}

// DepotMetrics is the operation-counter snapshot a depot reports via the
// METRICS verb.
type DepotMetrics struct {
	Allocates, Stores, Loads, Probes, Extends, Deletes int64
	BytesIn, BytesOut                                  int64
	Errors, Reaped, Connects, Restores, Violations     int64
}

// Metrics fetches the operation counters of the depot at addr.
func (c *Client) Metrics(addr string) (DepotMetrics, error) {
	var m DepotMetrics
	err := c.withConn("METRICS", addr, 0, true, func(conn *wire.Conn) error {
		if err := conn.WriteLine("METRICS"); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 13 {
			return fmt.Errorf("ibp: metrics: malformed response %v", toks)
		}
		dst := []*int64{
			&m.Allocates, &m.Stores, &m.Loads, &m.Probes, &m.Extends, &m.Deletes,
			&m.BytesIn, &m.BytesOut, &m.Errors, &m.Reaped, &m.Connects,
			&m.Restores, &m.Violations,
		}
		for i, tok := range toks {
			v, err := wire.ParseInt("counter", tok)
			if err != nil {
				return err
			}
			*dst[i] = v
		}
		return nil
	})
	return m, err
}

// Status asks the depot at addr for its capacity and duration limits.
func (c *Client) Status(addr string) (DepotStatus, error) {
	var st DepotStatus
	err := c.withConn(OpStatus, addr, 0, true, func(conn *wire.Conn) error {
		if err := conn.WriteLine(OpStatus); err != nil {
			return err
		}
		toks, err := conn.ReadStatus()
		if err != nil {
			return err
		}
		if len(toks) != 4 {
			return fmt.Errorf("ibp: status: malformed response %v", toks)
		}
		if st.TotalBytes, err = wire.ParseInt("total", toks[0]); err != nil {
			return err
		}
		if st.UsedBytes, err = wire.ParseInt("used", toks[1]); err != nil {
			return err
		}
		maxSec, err := wire.ParseInt("maxduration", toks[2])
		if err != nil {
			return err
		}
		st.MaxDuration = time.Duration(maxSec) * time.Second
		n, err := wire.ParseInt("allocations", toks[3])
		if err != nil {
			return err
		}
		st.Allocations = int(n)
		return nil
	})
	if err != nil {
		return DepotStatus{}, err
	}
	return st, nil
}
