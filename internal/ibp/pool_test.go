package ibp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestConnPoolGetPut(t *testing.T) {
	p := newConnPool(2)
	if p.get("a:1") != nil {
		t.Fatal("empty pool should return nil")
	}
	c1, c2, c3 := fakeConn(t), fakeConn(t), fakeConn(t)
	p.put("a:1", c1)
	p.put("a:1", c2)
	p.put("a:1", c3) // overflow: closed, not parked
	if got := p.get("a:1"); got != c2 {
		t.Fatal("pool should be LIFO")
	}
	if got := p.get("a:1"); got != c1 {
		t.Fatal("second get should return first conn")
	}
	if p.get("a:1") != nil {
		t.Fatal("pool should be drained")
	}
	// Different addresses are separate.
	p.put("b:1", fakeConn(t))
	if p.get("a:1") != nil {
		t.Fatal("addresses must not share pools")
	}
}

func TestConnPoolCloseAll(t *testing.T) {
	p := newConnPool(4)
	p.put("a:1", fakeConn(t))
	p.closeAll()
	if p.get("a:1") != nil {
		t.Fatal("closed pool should be empty")
	}
	// Parking after close just closes the conn.
	p.put("a:1", fakeConn(t))
	if p.get("a:1") != nil {
		t.Fatal("closed pool must not park conns")
	}
}

func TestConnPoolDropsOverAgedConns(t *testing.T) {
	p := newConnPool(4)
	now := time.Unix(1_000_000, 0)
	p.now = func() time.Time { return now }
	p.maxIdleAge = time.Minute

	stale := fakeConn(t)
	p.put("a:1", stale)
	now = now.Add(30 * time.Second)
	fresh := fakeConn(t)
	p.put("a:1", fresh)

	// 45s later the first conn is 75s old (over the limit) and the second
	// 45s old (under). LIFO pops fresh first; the stale one must be
	// dropped, not handed out.
	now = now.Add(45 * time.Second)
	if got := p.get("a:1"); got != fresh {
		t.Fatal("fresh conn should be returned")
	}
	if got := p.get("a:1"); got != nil {
		t.Fatal("over-aged conn must be dropped, not reused")
	}
	// Dropped means closed: a write on the wrapped pipe now fails.
	if err := stale.WriteLine("PING"); err == nil {
		t.Fatal("dropped conn was not closed")
	}

	// Age check disabled: arbitrarily old conns are still handed out.
	p.maxIdleAge = 0
	old := fakeConn(t)
	p.put("b:1", old)
	now = now.Add(24 * time.Hour)
	if got := p.get("b:1"); got != old {
		t.Fatal("age check disabled should return the conn")
	}
}

func fakeConn(t *testing.T) *wire.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return wire.NewConn(a)
}

func TestIsConnReuseError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{os.ErrDeadlineExceeded, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		// Wrapped connectivity errors classify the same.
		{fmt.Errorf("ibp: load: %w", io.EOF), true},
		{fmt.Errorf("ibp: dial x: %w", &net.OpError{Op: "dial", Err: errors.New("refused")}), true},
		// Remote protocol errors mean the depot answered; retrying the
		// same request would just repeat the answer (or worse, repeat a
		// non-idempotent side effect).
		{&wire.RemoteError{Code: wire.CodeNotFound}, false},
		{&wire.RemoteError{Code: wire.CodeExpired}, false},
		{&wire.RemoteError{Code: wire.CodeInternal}, false},
		{fmt.Errorf("op: %w", &wire.RemoteError{Code: wire.CodeBadRequest}), false},
		{errors.New("some app error"), false},
	}
	for _, c := range cases {
		if got := isConnReuseError(c.err); got != c.want {
			t.Fatalf("isConnReuseError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClientCloseWithoutPoolIsNoop(t *testing.T) {
	c := NewClient()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
