package ibp

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestConnPoolGetPut(t *testing.T) {
	p := newConnPool(2)
	if p.get("a:1") != nil {
		t.Fatal("empty pool should return nil")
	}
	c1, c2, c3 := fakeConn(t), fakeConn(t), fakeConn(t)
	p.put("a:1", c1)
	p.put("a:1", c2)
	p.put("a:1", c3) // overflow: closed, not parked
	if got := p.get("a:1"); got != c2 {
		t.Fatal("pool should be LIFO")
	}
	if got := p.get("a:1"); got != c1 {
		t.Fatal("second get should return first conn")
	}
	if p.get("a:1") != nil {
		t.Fatal("pool should be drained")
	}
	// Different addresses are separate.
	p.put("b:1", fakeConn(t))
	if p.get("a:1") != nil {
		t.Fatal("addresses must not share pools")
	}
}

func TestConnPoolCloseAll(t *testing.T) {
	p := newConnPool(4)
	p.put("a:1", fakeConn(t))
	p.closeAll()
	if p.get("a:1") != nil {
		t.Fatal("closed pool should be empty")
	}
	// Parking after close just closes the conn.
	p.put("a:1", fakeConn(t))
	if p.get("a:1") != nil {
		t.Fatal("closed pool must not park conns")
	}
}

func fakeConn(t *testing.T) *wire.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return wire.NewConn(a)
}

func TestIsConnReuseError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{&wire.RemoteError{Code: wire.CodeNotFound}, false},
		{errors.New("some app error"), false},
	}
	for _, c := range cases {
		if got := isConnReuseError(c.err); got != c.want {
			t.Fatalf("isConnReuseError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestTimeNowPlus(t *testing.T) {
	if !timeNowPlus(0).IsZero() {
		t.Fatal("zero timeout should clear the deadline")
	}
	d := timeNowPlus(time.Minute)
	if d.Before(time.Now()) {
		t.Fatal("deadline should be in the future")
	}
}

func TestClientCloseWithoutPoolIsNoop(t *testing.T) {
	c := NewClient()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
