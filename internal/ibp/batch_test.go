package ibp

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// oldDepotServer emulates a depot that predates the BATCH verb: it answers
// ERR UNSUPPORTED to the header line and then executes the already-pipelined
// sub-requests as ordinary single verbs — exactly what the real pre-BATCH
// dispatch loop does with an unknown operation. ALLOCATE/STORE/LOAD are
// implemented for real against an in-memory map so capability round trips
// work.
func oldDepotServer(t *testing.T, secret []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	addr := ln.Addr().String()
	var mu sync.Mutex
	allocs := make(map[string][]byte)
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				conn := wire.NewConn(raw)
				for {
					toks, err := conn.ReadLine()
					if err != nil {
						return
					}
					if len(toks) == 0 {
						continue
					}
					var werr error
					switch toks[0] {
					case OpAllocate:
						key, _ := NewKey()
						mu.Lock()
						allocs[key] = []byte{}
						mu.Unlock()
						set := MintSet(secret, addr, key)
						werr = conn.WriteOK(set.Read.String(), set.Write.String(), set.Manage.String())
					case OpStore:
						n, perr := wire.ParseInt("len", toks[2])
						if perr != nil {
							return
						}
						data, rerr := conn.ReadBlob(n)
						if rerr != nil {
							return
						}
						cap, cerr := ParseToken(addr, toks[1])
						if cerr != nil {
							// This is the answer an old depot gives a "@0"
							// batch reference: it is not a parseable token.
							werr = conn.WriteErr(wire.CodeBadRequest, "malformed capability")
							break
						}
						mu.Lock()
						allocs[cap.Key] = append(allocs[cap.Key], data...)
						total := int64(len(allocs[cap.Key]))
						mu.Unlock()
						werr = conn.WriteOK(wire.Itoa(n), wire.Itoa(total))
					case OpLoad:
						cap, cerr := ParseToken(addr, toks[1])
						if cerr != nil {
							werr = conn.WriteErr(wire.CodeBadRequest, "malformed capability")
							break
						}
						off, _ := wire.ParseInt("off", toks[2])
						n, _ := wire.ParseInt("len", toks[3])
						mu.Lock()
						data := allocs[cap.Key]
						mu.Unlock()
						if off+n > int64(len(data)) {
							werr = conn.WriteErr(wire.CodeOutOfRange, "beyond written length")
							break
						}
						if werr = conn.WriteOK(wire.Itoa(n)); werr == nil {
							werr = conn.WriteBlob(data[off : off+n])
						}
					default:
						// Unknown verb — including BATCH — is answered and
						// skipped, leaving the pipelined stream to be handled
						// as plain operations.
						werr = conn.WriteErr(wire.CodeUnsupported, "unknown operation %s", toks[0])
					}
					if werr != nil {
						return
					}
				}
			}(raw)
		}
	}()
	return addr
}

func TestBatchAgainstOldDepot(t *testing.T) {
	secret := []byte("old-depot-secret")
	addr := oldDepotServer(t, secret)
	c := NewClient()
	payload := []byte("survives the downgrade")

	// AllocateStore leans on a batch-local reference the old depot cannot
	// resolve; the helper must detect the rejection and finish the store
	// sequentially with the real minted capability.
	set, err := c.AllocateStore(addr, 1<<16, time.Hour, Hard, payload)
	if err != nil {
		t.Fatalf("AllocateStore against old depot: %v", err)
	}
	got, err := c.Load(set.Read, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("load after fallback store: %v", err)
	}
	// The rejection must be cached so the next ref-batch skips the wire
	// attempt entirely and runs sequentially.
	if c.batches.allowed(addr) {
		t.Fatal("old depot not marked batch-unsupported")
	}
	set2, err := c.AllocateStore(addr, 1<<16, time.Hour, Hard, payload)
	if err != nil {
		t.Fatalf("second AllocateStore (sequential path): %v", err)
	}
	if got, err := c.Load(set2.Read, 0, int64(len(payload))); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("load after sequential store: %v", err)
	}
}

func TestBatchWithoutRefsWorksOnOldDepot(t *testing.T) {
	// A ref-free batch is pure pipelining: the old depot rejects only the
	// header and still executes every sub-op, so results come back whole.
	secret := []byte("old-depot-secret")
	addr := oldDepotServer(t, secret)
	c := NewClient()
	res, err := c.Batch(addr, []BatchOp{
		AllocateOp(1<<16, time.Hour, Hard),
		AllocateOp(1<<16, time.Hour, Hard),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
		if r.Caps.Read.Type != CapRead {
			t.Fatalf("op %d returned bad caps", i)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	c := NewClient()
	cases := []struct {
		name string
		ops  []BatchOp
	}{
		{"empty", nil},
		{"forward ref", []BatchOp{
			StoreRefOp(1, []byte("x")),
			AllocateOp(10, time.Hour, Hard),
		}},
		{"ref to non-allocate", []BatchOp{
			AllocateOp(10, time.Hour, Hard),
			StoreRefOp(0, []byte("x")),
			{Verb: OpLoad, Ref: 1, Length: 1},
		}},
		{"wrong cap type", []BatchOp{
			{Verb: OpStore, Ref: -1, Cap: MintCap([]byte("s"), "a:1", "k", CapRead), Data: []byte("x")},
		}},
		{"unbatchable verb", []BatchOp{{Verb: OpCopy, Ref: -1}}},
		{"bad reliability", []BatchOp{{Verb: OpAllocate, MaxSize: 10, Duration: time.Hour, Rel: "BEST_EFFORT", Ref: -1}}},
	}
	for _, tc := range cases {
		if _, err := c.Batch("127.0.0.1:1", tc.ops); err == nil {
			t.Errorf("%s: batch validation should fail", tc.name)
		}
	}
}

func TestParseBatchRef(t *testing.T) {
	if i, ok := ParseBatchRef("@3"); !ok || i != 3 {
		t.Fatalf("@3 -> %d, %v", i, ok)
	}
	for _, bad := range []string{"3", "@", "@-1", "@x", ""} {
		if _, ok := ParseBatchRef(bad); ok {
			t.Fatalf("ParseBatchRef(%q) should fail", bad)
		}
	}
}
