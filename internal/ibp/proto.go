package ibp

import "time"

// Protocol operation names (request line verbs).
const (
	OpAllocate = "ALLOCATE"
	OpStore    = "STORE"
	OpLoad     = "LOAD"
	OpProbe    = "PROBE"
	OpExtend   = "EXTEND"
	OpDelete   = "DELETE"
	OpStatus   = "STATUS"
	OpCopy     = "COPY"
	OpMCopy    = "MCOPY"
	OpQuit     = "QUIT"
	// OpTrace precedes another operation on the same connection and carries
	// trace context ("TRACE <traceid> <parentspan> <flags>"). Depots that
	// predate it answer ERR UNSUPPORTED and the exchange proceeds untraced —
	// the request line of the operation itself never changes, which is what
	// keeps old peers interoperable.
	OpTrace = "TRACE"
	// OpBatch announces n pipelined sub-operations ("BATCH <n>") that follow
	// on the same connection, each in the standard single-verb request
	// format. A supporting depot acks "OK <n>" and may honour batch-local
	// capability references ("@<i>"); an old depot answers ERR UNSUPPORTED
	// and then — because sub-requests are byte-identical to single verbs —
	// executes the pipelined stream as ordinary operations, so the client
	// still collects every per-op response. Only @-references need the new
	// depot.
	OpBatch = "BATCH"
)

// MaxBatchOps bounds the sub-operations of one BATCH exchange on both
// sides of the wire.
const MaxBatchOps = 64

// Reliability expresses how durable an allocation should be (paper §2.1
// exposes service attributes of the underlying storage rather than hiding
// them).
type Reliability string

// Reliability classes.
const (
	// Hard allocations survive until their time limit expires.
	Hard Reliability = "HARD"
	// Soft allocations may be reclaimed early under space pressure.
	Soft Reliability = "SOFT"
)

// ValidReliability reports whether r names a known reliability class.
func ValidReliability(r Reliability) bool { return r == Hard || r == Soft }

// AllocInfo is the metadata returned by PROBE.
type AllocInfo struct {
	MaxSize     int64       // allocation capacity in bytes
	Size        int64       // bytes written so far (append pointer)
	Expires     time.Time   // absolute expiration
	Reliability Reliability // HARD or SOFT
	RefCount    int         // manage DELETE decrements; 0 frees
}

// DepotStatus is the response to STATUS: the resources a depot exposes to
// higher layers (capacity and duration limits).
type DepotStatus struct {
	TotalBytes  int64         // configured capacity
	UsedBytes   int64         // bytes currently committed to live allocations
	MaxDuration time.Duration // longest duration the depot will grant
	Allocations int           // live allocation count
}

// AvailableBytes reports the capacity not yet committed.
func (s DepotStatus) AvailableBytes() int64 { return s.TotalBytes - s.UsedBytes }
