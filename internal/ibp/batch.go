package ibp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/wire"
)

// The batched verb path: N operations per round trip on one pooled
// connection. The request stream is "BATCH <n>" followed by n standard
// single-verb request lines (STORE payloads inline after their lines), all
// flushed as one network write. The response stream is the batch ack
// followed by n standard single-verb responses in order.
//
// Because sub-requests are byte-identical to ordinary verbs, a depot that
// predates BATCH answers ERR UNSUPPORTED to the header and then executes
// the already-pipelined stream as plain operations — the client still reads
// n responses and the semantics are unchanged. The only feature that
// genuinely needs a new depot is the batch-local capability reference
// ("@<i>", resolving to the allocation minted by sub-op i of the same
// batch); Batch falls back to sequential single verbs when it already knows
// the depot is old and refs are present.

// BatchOp describes one sub-operation of a pipelined batch. Verb selects
// which fields matter:
//
//   - OpAllocate: MaxSize, Duration, Rel
//   - OpStore:    Cap or Ref, Data
//   - OpLoad:     Cap or Ref, Offset, Length
//   - OpExtend:   Cap or Ref, Duration
//   - OpProbe:    Cap or Ref
//   - OpDelete:   Cap or Ref
//
// Ref < 0 (the zero value via NewBatchOp helpers uses -1) means Cap names
// the allocation; Ref >= 0 references the CapSet minted by the ALLOCATE at
// that index in the same batch, and the appropriate capability (write for
// STORE, read for LOAD, manage otherwise) is derived server-side.
type BatchOp struct {
	Verb     string
	MaxSize  int64
	Duration time.Duration
	Rel      Reliability
	Cap      Cap
	Ref      int
	Data     []byte
	Offset   int64
	Length   int64
}

// BatchResult is the outcome of one sub-operation. Exactly one of the
// payload fields is meaningful, matching the op's verb; Err is non-nil when
// the sub-operation failed (remote per-op errors and transport errors
// both land here — a dead connection mid-batch fails every unanswered op).
type BatchResult struct {
	Err     error
	Caps    CapSet    // ALLOCATE
	NewLen  int64     // STORE
	Data    []byte    // LOAD (plain allocation, caller-owned)
	Expires time.Time // EXTEND
	Info    AllocInfo // PROBE
	RefCnt  int       // DELETE
}

// AllocateOp builds an ALLOCATE sub-op.
func AllocateOp(maxSize int64, duration time.Duration, rel Reliability) BatchOp {
	return BatchOp{Verb: OpAllocate, MaxSize: maxSize, Duration: duration, Rel: rel, Ref: -1}
}

// StoreOp builds a STORE sub-op against an existing write capability.
func StoreOp(w Cap, data []byte) BatchOp {
	return BatchOp{Verb: OpStore, Cap: w, Ref: -1, Data: data}
}

// StoreRefOp builds a STORE sub-op against the allocation minted by the
// ALLOCATE at index ref in the same batch.
func StoreRefOp(ref int, data []byte) BatchOp {
	return BatchOp{Verb: OpStore, Ref: ref, Data: data}
}

// LoadOp builds a LOAD sub-op.
func LoadOp(r Cap, offset, length int64) BatchOp {
	return BatchOp{Verb: OpLoad, Cap: r, Ref: -1, Offset: offset, Length: length}
}

// ExtendOp builds an EXTEND sub-op.
func ExtendOp(m Cap, duration time.Duration) BatchOp {
	return BatchOp{Verb: OpExtend, Cap: m, Ref: -1, Duration: duration}
}

// batchRef renders a batch-local capability reference token.
func batchRef(i int) string { return "@" + strconv.Itoa(i) }

// ParseBatchRef decodes an "@<i>" token; ok is false for ordinary tokens.
func ParseBatchRef(tok string) (int, bool) {
	if !strings.HasPrefix(tok, "@") {
		return 0, false
	}
	i, err := strconv.Atoi(tok[1:])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// usesRefs reports whether any op references a batch-local allocation.
func usesRefs(ops []BatchOp) bool {
	for _, op := range ops {
		if op.Verb != OpAllocate && op.Ref >= 0 {
			return true
		}
	}
	return false
}

// validateBatch sanity-checks ops client-side so malformed batches fail
// before touching the network: known verbs, refs pointing at earlier
// ALLOCATEs, capability types matching verbs, payloads under the wire cap.
func validateBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return errors.New("ibp: empty batch")
	}
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("ibp: batch of %d ops exceeds limit %d", len(ops), MaxBatchOps)
	}
	for i, op := range ops {
		switch op.Verb {
		case OpAllocate:
			if op.MaxSize <= 0 {
				return fmt.Errorf("ibp: batch op %d: allocation size must be positive", i)
			}
			if !ValidReliability(op.Rel) {
				return fmt.Errorf("ibp: batch op %d: bad reliability %q", i, op.Rel)
			}
			continue
		case OpStore, OpLoad, OpExtend, OpProbe, OpDelete:
		default:
			return fmt.Errorf("ibp: batch op %d: verb %q not batchable", i, op.Verb)
		}
		if op.Ref >= 0 {
			if op.Ref >= i || ops[op.Ref].Verb != OpAllocate {
				return fmt.Errorf("ibp: batch op %d: ref @%d does not name an earlier ALLOCATE", i, op.Ref)
			}
		} else {
			want := map[string]CapType{
				OpStore: CapWrite, OpLoad: CapRead,
				OpExtend: CapManage, OpProbe: CapManage, OpDelete: CapManage,
			}[op.Verb]
			if op.Cap.Type != want {
				return fmt.Errorf("ibp: batch op %d: %s requires a %s capability, got %s", i, op.Verb, want, op.Cap.Type)
			}
		}
		switch op.Verb {
		case OpStore:
			if int64(len(op.Data)) > wire.MaxBlobLen {
				return fmt.Errorf("ibp: batch op %d: payload exceeds wire limit", i)
			}
		case OpLoad:
			if op.Offset < 0 || op.Length < 0 {
				return fmt.Errorf("ibp: batch op %d: negative offset or length", i)
			}
		case OpExtend:
			if op.Duration <= 0 {
				return fmt.Errorf("ibp: batch op %d: duration must be positive", i)
			}
		}
	}
	return nil
}

// capToken renders the capability token for op, using an @-reference when
// the op targets a batch-local allocation.
func (op BatchOp) capToken() string {
	if op.Ref >= 0 {
		return batchRef(op.Ref)
	}
	return op.Cap.Token()
}

// writeBatchOp appends one sub-request (line plus any payload) to the
// connection's write buffer without flushing.
func writeBatchOp(conn *wire.Conn, op BatchOp) error {
	switch op.Verb {
	case OpAllocate:
		return conn.WriteLineBuffered(OpAllocate, wire.Itoa(op.MaxSize),
			wire.Itoa(int64(op.Duration.Seconds())), string(op.Rel))
	case OpStore:
		if err := conn.WriteLineBuffered(OpStore, op.capToken(), wire.Itoa(int64(len(op.Data)))); err != nil {
			return err
		}
		return conn.WriteBlobBuffered(op.Data)
	case OpLoad:
		return conn.WriteLineBuffered(OpLoad, op.capToken(), wire.Itoa(op.Offset), wire.Itoa(op.Length))
	case OpExtend:
		return conn.WriteLineBuffered(OpExtend, op.capToken(), wire.Itoa(int64(op.Duration.Seconds())))
	case OpProbe:
		return conn.WriteLineBuffered(OpProbe, op.capToken())
	case OpDelete:
		return conn.WriteLineBuffered(OpDelete, op.capToken())
	default:
		return fmt.Errorf("ibp: verb %q not batchable", op.Verb)
	}
}

// readBatchResult parses one sub-response. A *wire.RemoteError lands in
// res.Err with the connection still usable (the next response follows); any
// other error means the connection state is unknown and the batch must
// stop.
func readBatchResult(conn *wire.Conn, op BatchOp, res *BatchResult) error {
	toks, err := conn.ReadStatus()
	if err != nil {
		if wire.IsRemoteAny(err) {
			res.Err = err
			return nil
		}
		return err
	}
	switch op.Verb {
	case OpAllocate:
		if len(toks) != 3 {
			return fmt.Errorf("ibp: batch allocate: want 3 caps, got %d", len(toks))
		}
		for i, dst := range []*Cap{&res.Caps.Read, &res.Caps.Write, &res.Caps.Manage} {
			c, err := ParseCap(toks[i])
			if err != nil {
				return fmt.Errorf("ibp: batch allocate: %w", err)
			}
			*dst = c
		}
	case OpStore:
		if len(toks) != 2 {
			return fmt.Errorf("ibp: batch store: malformed response %v", toks)
		}
		if res.NewLen, err = wire.ParseInt("length", toks[1]); err != nil {
			return err
		}
	case OpLoad:
		if len(toks) != 1 {
			return fmt.Errorf("ibp: batch load: malformed response %v", toks)
		}
		n, err := wire.ParseInt("length", toks[0])
		if err != nil {
			return err
		}
		if n != op.Length {
			return fmt.Errorf("ibp: batch load: depot returned %d bytes, want %d", n, op.Length)
		}
		if res.Data, err = conn.ReadBlob(n); err != nil {
			return err
		}
	case OpExtend:
		if len(toks) != 1 {
			return fmt.Errorf("ibp: batch extend: malformed response %v", toks)
		}
		exp, err := wire.ParseInt("expires", toks[0])
		if err != nil {
			return err
		}
		res.Expires = time.Unix(exp, 0).UTC()
	case OpProbe:
		if len(toks) != 5 {
			return fmt.Errorf("ibp: batch probe: malformed response %v", toks)
		}
		if res.Info.MaxSize, err = wire.ParseInt("maxsize", toks[0]); err != nil {
			return err
		}
		if res.Info.Size, err = wire.ParseInt("size", toks[1]); err != nil {
			return err
		}
		exp, err := wire.ParseInt("expires", toks[2])
		if err != nil {
			return err
		}
		res.Info.Expires = time.Unix(exp, 0).UTC()
		res.Info.Reliability = Reliability(toks[3])
		ref, err := wire.ParseInt("refcount", toks[4])
		if err != nil {
			return err
		}
		res.Info.RefCount = int(ref)
	case OpDelete:
		if len(toks) != 1 {
			return fmt.Errorf("ibp: batch delete: malformed response %v", toks)
		}
		ref, err := wire.ParseInt("refcount", toks[0])
		if err != nil {
			return err
		}
		res.RefCnt = int(ref)
	}
	return nil
}

// Batch runs ops against the depot at addr as one pipelined exchange and
// returns one result per op, in order. The exchange is never retried (it
// may contain non-idempotent STOREs); a connection failure mid-batch fails
// the unanswered ops with that error while keeping the outcomes of the ops
// already answered. Each sub-operation is reported to the health scoreboard
// and the observer individually, exactly as the single-verb path would
// report it — a batch is N operations, not one.
//
// A non-nil error means the batch could not run at all (validation,
// circuit breaker, or sequential-fallback setup); results is nil then.
func (c *Client) Batch(addr string, ops []BatchOp) ([]BatchResult, error) {
	if err := validateBatch(ops); err != nil {
		return nil, err
	}
	if usesRefs(ops) && !c.batches.allowed(addr) {
		// The depot is known to predate BATCH and the batch leans on
		// batch-local references only a new depot resolves: run the ops as
		// plain sequential verbs (each reporting its own outcome via
		// withConn).
		return c.sequentialBatch(addr, ops)
	}
	if c.health != nil {
		if err := c.health.Allow(addr); err != nil {
			if c.obs != nil {
				c.obs.Record(obs.Event{
					Time: c.clock.Now(), Verb: OpBatch, Depot: addr,
					Outcome: "circuit-open", Err: err.Error(),
				})
			}
			return nil, err
		}
	}
	start := c.clock.Now()
	conn, reused, err := c.acquire(addr)
	results := make([]BatchResult, len(ops))
	if err != nil {
		c.finishBatch(addr, ops, results, err, 0, reused, start)
		return results, nil
	}
	answered, err := c.runBatch(conn, addr, ops, results)
	c.release(addr, conn, err)
	c.finishBatch(addr, ops, results, err, answered, reused, start)
	return results, nil
}

// runBatch performs the pipelined exchange on an acquired connection. It
// returns how many sub-responses were fully read and the transport error
// that stopped the exchange (nil when all n were answered). Per-op remote
// errors are recorded in results and do not stop the exchange.
func (c *Client) runBatch(conn *wire.Conn, addr string, ops []BatchOp, results []BatchResult) (int, error) {
	if err := conn.WriteLineBuffered(OpBatch, wire.Itoa(int64(len(ops)))); err != nil {
		return 0, err
	}
	for _, op := range ops {
		if err := writeBatchOp(conn, op); err != nil {
			return 0, err
		}
	}
	if err := conn.Flush(); err != nil {
		return 0, err
	}
	// Batch ack. An old depot rejects the header with UNSUPPORTED but still
	// executes the pipelined sub-requests as ordinary verbs, so either way n
	// per-op responses follow.
	if _, err := conn.ReadStatus(); err != nil {
		if !wire.IsRemote(err, wire.CodeUnsupported) {
			return 0, err
		}
		c.batches.markUnsupported(addr)
	}
	for i := range ops {
		if err := readBatchResult(conn, ops[i], &results[i]); err != nil {
			results[i].Err = err
			return i, err
		}
	}
	return len(ops), nil
}

// finishBatch fails every unanswered result with the transport error and
// emits per-op health reports and observer events. The batch's wall time is
// split evenly across its ops so aggregate latency stays meaningful; there
// is deliberately no batch-level health report — outcomes must count once.
func (c *Client) finishBatch(addr string, ops []BatchOp, results []BatchResult, err error, answered int, reused bool, start time.Time) {
	for i := answered; i < len(results); i++ {
		if results[i].Err == nil {
			if err != nil {
				results[i].Err = err
			} else {
				results[i].Err = errors.New("ibp: batch aborted before this op")
			}
		}
	}
	elapsed := c.clock.Since(start)
	perOp := elapsed / time.Duration(len(ops))
	for i := range results {
		if c.health != nil {
			c.health.Report(addr, health.Classify(results[i].Err), perOp)
		}
		if c.obs != nil {
			ev := obs.Event{
				Time: start, Verb: ops[i].Verb, Depot: addr, Latency: perOp,
				Outcome: health.Classify(results[i].Err).String(),
				Reused:  reused, Batched: true,
			}
			if results[i].Err != nil {
				ev.Err = results[i].Err.Error()
			} else {
				switch ops[i].Verb {
				case OpStore:
					ev.Bytes = int64(len(ops[i].Data))
				case OpLoad:
					ev.Bytes = ops[i].Length
				}
			}
			c.obs.Record(ev)
		}
	}
}

// sequentialBatch runs the ops as ordinary single verbs, resolving
// @-references from the results of earlier ALLOCATEs. Health and observer
// reporting happen inside the individual calls.
func (c *Client) sequentialBatch(addr string, ops []BatchOp) ([]BatchResult, error) {
	results := make([]BatchResult, len(ops))
	for i, op := range ops {
		cp := op.Cap
		if op.Verb != OpAllocate && op.Ref >= 0 {
			ref := results[op.Ref]
			if ref.Err != nil {
				results[i].Err = fmt.Errorf("ibp: batch ref @%d failed: %w", op.Ref, ref.Err)
				continue
			}
			switch op.Verb {
			case OpStore:
				cp = ref.Caps.Write
			case OpLoad:
				cp = ref.Caps.Read
			default:
				cp = ref.Caps.Manage
			}
		}
		switch op.Verb {
		case OpAllocate:
			results[i].Caps, results[i].Err = c.Allocate(addr, op.MaxSize, op.Duration, op.Rel)
		case OpStore:
			results[i].NewLen, results[i].Err = c.Store(cp, op.Data)
		case OpLoad:
			results[i].Data, results[i].Err = c.Load(cp, op.Offset, op.Length)
		case OpExtend:
			results[i].Expires, results[i].Err = c.Extend(cp, op.Duration)
		case OpProbe:
			results[i].Info, results[i].Err = c.Probe(cp)
		case OpDelete:
			results[i].RefCnt, results[i].Err = c.Delete(cp)
		}
	}
	return results, nil
}

// AllocateStore mints an allocation and stores payload into it in one
// round trip (ALLOCATE + STORE @0 in a batch). On a depot that predates
// BATCH the store sub-op's @-reference fails per-op; AllocateStore detects
// that and completes the store sequentially with the minted capability, so
// callers always get 1-RTT behaviour against new depots and correct
// behaviour against old ones.
//
// When the allocate succeeds but the store fails, the CapSet is returned
// alongside the error so the caller can Delete the orphaned allocation.
func (c *Client) AllocateStore(addr string, maxSize int64, duration time.Duration, rel Reliability, payload []byte) (CapSet, error) {
	res, err := c.Batch(addr, []BatchOp{
		AllocateOp(maxSize, duration, rel),
		StoreRefOp(0, payload),
	})
	if err != nil {
		return CapSet{}, err
	}
	if res[0].Err != nil {
		return CapSet{}, res[0].Err
	}
	set := res[0].Caps
	if res[1].Err == nil {
		return set, nil
	}
	// The allocation exists but the batched store failed. If the failure
	// smells like an old depot rejecting the @-reference (it answers
	// BAD_REQUEST for the unparseable token), retry the store as a plain
	// verb against the real capability; otherwise surface the error with
	// the caps for cleanup.
	if wire.IsRemote(res[1].Err, wire.CodeBadRequest) && !c.batches.allowed(addr) {
		if _, serr := c.Store(set.Write, payload); serr == nil {
			return set, nil
		} else {
			return set, serr
		}
	}
	return set, res[1].Err
}
