// Package ibp implements the Internet Backplane Protocol — the lowest
// network-visible layer of the Network Storage Stack (paper §2.1).
//
// IBP exposes storage as time-limited, append-only byte arrays. Allocation
// works like a network malloc(): a client asks a depot for space and
// receives a trio of cryptographically secure text strings — capabilities —
// for reading, writing and managing the allocation. Capabilities can be
// passed between clients freely, like URLs; possession is authorization.
//
// This package holds the capability model, the wire protocol constants, and
// the client library. The depot daemon lives in internal/depot.
package ibp

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// CapType distinguishes the three capabilities of an allocation.
type CapType string

// The three capability types of paper §2.1.
const (
	CapRead   CapType = "READ"
	CapWrite  CapType = "WRITE"
	CapManage CapType = "MANAGE"
)

func (t CapType) valid() bool {
	switch t {
	case CapRead, CapWrite, CapManage:
		return true
	}
	return false
}

// KeyLen is the length in bytes of an allocation key.
const KeyLen = 16

// TagLen is the length in bytes of a capability's truncated HMAC tag.
const TagLen = 16

// Cap is a single capability: an unforgeable reference to one allocation on
// one depot, scoped to one operation class.
type Cap struct {
	Addr string  // depot network address, host:port
	Key  string  // allocation key, hex
	Type CapType // READ, WRITE or MANAGE
	Tag  string  // truncated HMAC-SHA256 over (key, type) under the depot secret, hex
}

// String renders the capability in its canonical text form:
//
//	ibp://host:port/<key>/<TYPE>#<tag>
func (c Cap) String() string {
	return fmt.Sprintf("ibp://%s/%s/%s#%s", c.Addr, c.Key, c.Type, c.Tag)
}

// IsZero reports whether the capability is unset.
func (c Cap) IsZero() bool { return c == Cap{} }

// ErrBadCap is returned when a capability string cannot be parsed.
var ErrBadCap = errors.New("ibp: malformed capability")

// ParseCap parses the canonical text form produced by Cap.String.
func ParseCap(s string) (Cap, error) {
	rest, ok := strings.CutPrefix(s, "ibp://")
	if !ok {
		return Cap{}, fmt.Errorf("%w: missing ibp:// scheme in %q", ErrBadCap, s)
	}
	body, tag, ok := strings.Cut(rest, "#")
	if !ok {
		return Cap{}, fmt.Errorf("%w: missing #tag in %q", ErrBadCap, s)
	}
	parts := strings.Split(body, "/")
	if len(parts) != 3 {
		return Cap{}, fmt.Errorf("%w: want addr/key/type in %q", ErrBadCap, s)
	}
	c := Cap{Addr: parts[0], Key: parts[1], Type: CapType(parts[2]), Tag: tag}
	if err := c.validate(); err != nil {
		return Cap{}, err
	}
	return c, nil
}

func (c Cap) validate() error {
	if c.Addr == "" || !strings.Contains(c.Addr, ":") {
		return fmt.Errorf("%w: bad depot address %q", ErrBadCap, c.Addr)
	}
	if b, err := hex.DecodeString(c.Key); err != nil || len(b) != KeyLen {
		return fmt.Errorf("%w: bad key %q", ErrBadCap, c.Key)
	}
	if !c.Type.valid() {
		return fmt.Errorf("%w: bad type %q", ErrBadCap, c.Type)
	}
	if b, err := hex.DecodeString(c.Tag); err != nil || len(b) != TagLen {
		return fmt.Errorf("%w: bad tag", ErrBadCap)
	}
	return nil
}

// CapSet is the trio returned by a successful allocation.
type CapSet struct {
	Read   Cap
	Write  Cap
	Manage Cap
}

// NewKey generates a fresh random allocation key.
func NewKey() (string, error) {
	var b [KeyLen]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("ibp: generating key: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// MintCap creates a capability of the given type for key on the depot at
// addr, tagged under secret. Depots mint capabilities; clients only carry
// them.
func MintCap(secret []byte, addr, key string, t CapType) Cap {
	return Cap{Addr: addr, Key: key, Type: t, Tag: computeTag(secret, key, t)}
}

// MintSet mints the full read/write/manage trio for one allocation.
func MintSet(secret []byte, addr, key string) CapSet {
	return CapSet{
		Read:   MintCap(secret, addr, key, CapRead),
		Write:  MintCap(secret, addr, key, CapWrite),
		Manage: MintCap(secret, addr, key, CapManage),
	}
}

// VerifyCap reports whether the capability's tag is authentic under secret.
// Verification is constant-time in the tag comparison.
func VerifyCap(secret []byte, c Cap) bool {
	if !c.Type.valid() {
		return false
	}
	want := computeTag(secret, c.Key, c.Type)
	return hmac.Equal([]byte(want), []byte(c.Tag))
}

func computeTag(secret []byte, key string, t CapType) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(key))
	mac.Write([]byte{0})
	mac.Write([]byte(t))
	return hex.EncodeToString(mac.Sum(nil)[:TagLen])
}

// Token renders the key/type/tag part of a capability as a single wire
// token (the depot already knows its own address).
func (c Cap) Token() string { return c.Key + "/" + string(c.Type) + "#" + c.Tag }

// ParseToken parses the wire token form; addr is supplied by context.
func ParseToken(addr, tok string) (Cap, error) {
	return ParseCap("ibp://" + addr + "/" + tok)
}
