package ibp

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// The IBP wire protocol is request/response over a persistent connection,
// so a client may reuse connections across operations instead of dialing
// per call (the original library's model, and this client's default).
// Pooling is opt-in via WithPooling: benchmarks show when the dial round
// trip matters.

// defaultMaxIdleAge is how long a parked connection stays reusable. A
// depot restart leaves every pooled conn to it stale; without an age
// limit each subsequent operation would burn a round trip discovering
// that via the retry-on-reuse path.
const defaultMaxIdleAge = 90 * time.Second

// idleConn is a parked connection stamped with its park time.
type idleConn struct {
	conn   *wire.Conn
	parked time.Time
}

// connPool keeps idle framed connections per depot address.
type connPool struct {
	mu         sync.Mutex
	idle       map[string][]idleConn
	maxIdle    int
	maxIdleAge time.Duration
	now        func() time.Time // wall clock; swappable in tests
	closed     bool
}

func newConnPool(maxIdle int) *connPool {
	return &connPool{
		idle:       make(map[string][]idleConn),
		maxIdle:    maxIdle,
		maxIdleAge: defaultMaxIdleAge,
		now:        time.Now,
	}
}

// get returns an idle connection to addr, or nil. Connections parked
// longer than maxIdleAge are dropped rather than returned: their peer has
// likely closed or restarted, and handing them out would force every
// caller through the stale-conn retry path.
func (p *connPool) get(addr string) *wire.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.idle[addr]
	cutoff := p.now().Add(-p.maxIdleAge)
	for len(conns) > 0 {
		ic := conns[len(conns)-1]
		conns = conns[:len(conns)-1]
		p.idle[addr] = conns
		if p.maxIdleAge > 0 && ic.parked.Before(cutoff) {
			ic.conn.Close()
			continue
		}
		return ic.conn
	}
	return nil
}

// put parks a healthy connection for reuse; overflow closes it.
func (p *connPool) put(addr string, conn *wire.Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle[addr]) >= p.maxIdle {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], idleConn{conn: conn, parked: p.now()})
	p.mu.Unlock()
}

// closeAll drops every idle connection.
func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for addr, conns := range p.idle {
		for _, ic := range conns {
			ic.conn.Close()
		}
		delete(p.idle, addr)
	}
}

// WithPooling enables connection reuse with up to maxIdle parked
// connections per depot. Close the client when done to release them.
func WithPooling(maxIdle int) Option {
	return func(c *Client) {
		if maxIdle > 0 {
			c.pool = newConnPool(maxIdle)
		}
	}
}

// WithPoolIdleAge bounds how long a pooled connection may sit idle before
// get drops it (default 90s; <=0 disables the age check). Apply after
// WithPooling.
func WithPoolIdleAge(d time.Duration) Option {
	return func(c *Client) {
		if c.pool != nil {
			c.pool.maxIdleAge = d
		}
	}
}

// Close releases pooled connections. A client without pooling needs no
// Close.
func (c *Client) Close() error {
	if c.pool != nil {
		c.pool.closeAll()
	}
	return nil
}

// acquire returns a connection to addr — pooled if available, freshly
// dialed otherwise — with the operation deadline applied.
func (c *Client) acquire(addr string) (*wire.Conn, bool, error) {
	if c.pool != nil {
		if conn := c.pool.get(addr); conn != nil {
			if err := c.applyDeadline(conn); err == nil {
				return conn, true, nil
			}
			conn.Close()
		}
	}
	conn, err := c.dialFresh(addr)
	return conn, false, err
}

// release parks conn for reuse after a clean exchange, or closes it after
// any error (the protocol state is then unknown).
func (c *Client) release(addr string, conn *wire.Conn, err error) {
	if err != nil || c.pool == nil {
		conn.Close()
		return
	}
	c.pool.put(addr, conn)
}

// isConnReuseError reports whether err plausibly came from a stale pooled
// connection (peer closed it while idle) and the operation is worth one
// retry on a fresh dial. Remote protocol errors are never retried.
func isConnReuseError(err error) bool {
	if err == nil || wire.IsRemoteAny(err) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}
