package ibp

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netx"
	"repro/internal/obs"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// vdRecordConn wraps a net.Conn with a netx.VirtualDeadliner that records
// every virtual deadline it is handed — the observable side of
// applyDeadline routing through the client clock.
type vdRecordConn struct {
	net.Conn
	mu        sync.Mutex
	deadlines []time.Time
}

func (c *vdRecordConn) SetVirtualDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadlines = append(c.deadlines, t)
	return nil
}

func (c *vdRecordConn) virtualDeadlines() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Time(nil), c.deadlines...)
}

// statusPipeDialer serves canned STATUS responses over an in-memory pipe
// and returns the recording conns it handed out.
func statusPipeDialer(t *testing.T) (netx.Dialer, func() []*vdRecordConn) {
	t.Helper()
	var mu sync.Mutex
	var conns []*vdRecordConn
	d := netx.DialerFunc(func(network, addr string, timeout time.Duration) (net.Conn, error) {
		client, server := net.Pipe()
		go func() {
			sc := wire.NewConn(server)
			defer sc.Close()
			for {
				toks, err := sc.ReadLine()
				if err != nil {
					return
				}
				if len(toks) == 0 || toks[0] != OpStatus {
					sc.WriteErr(wire.CodeBadRequest, "unexpected %v", toks)
					return
				}
				if err := sc.WriteOK("100", "0", "3600", "0"); err != nil {
					return
				}
			}
		}()
		vc := &vdRecordConn{Conn: client}
		mu.Lock()
		conns = append(conns, vc)
		mu.Unlock()
		return vc, nil
	})
	return d, func() []*vdRecordConn {
		mu.Lock()
		defer mu.Unlock()
		return append([]*vdRecordConn(nil), conns...)
	}
}

// TestApplyDeadlineUsesClientClock is the regression test for the pooled
// deadline clock bug: refreshing the deadline on a reused connection must
// go through the injected clock (and the VirtualDeadliner path), not the
// wall clock. On the old code the second operation reused the pooled conn
// without ever setting a new virtual deadline, so WithClock was silently
// ignored exactly when it mattered.
func TestApplyDeadlineUsesClientClock(t *testing.T) {
	base := time.Date(2002, time.April, 15, 0, 0, 0, 0, time.UTC)
	ck := vclock.NewVirtual(base)
	dialer, dialed := statusPipeDialer(t)
	c := NewClient(
		WithDialer(dialer),
		WithClock(ck),
		WithOpTimeout(30*time.Second),
		WithPooling(2),
	)
	defer c.Close()

	if _, err := c.Status("depot:1"); err != nil {
		t.Fatalf("first status: %v", err)
	}
	ck.Advance(5 * time.Minute)
	if _, err := c.Status("depot:1"); err != nil {
		t.Fatalf("second status: %v", err)
	}

	conns := dialed()
	if len(conns) != 1 {
		t.Fatalf("dialed %d conns, want 1 (second op must reuse the pool)", len(conns))
	}
	ds := conns[0].virtualDeadlines()
	if len(ds) != 2 {
		t.Fatalf("got %d virtual deadlines, want 2 (dial + pooled refresh): %v", len(ds), ds)
	}
	if want := base.Add(30 * time.Second); !ds[0].Equal(want) {
		t.Fatalf("dial-time deadline = %v, want %v", ds[0], want)
	}
	if want := base.Add(5*time.Minute + 30*time.Second); !ds[1].Equal(want) {
		t.Fatalf("pooled-refresh deadline = %v, want %v (client clock + op timeout)", ds[1], want)
	}
}

// TestTraceEventsEmitted checks the observer hook: one event per
// operation, carrying verb, depot, bytes, outcome, and the pool-reuse
// flag.
func TestTraceEventsEmitted(t *testing.T) {
	addr := scriptServer(t,
		"OK 100 0 3600 0",
		"OK 100 0 3600 0",
	)
	col := obs.NewCollector(16)
	c := NewClient(WithObserver(col), WithPooling(2))
	defer c.Close()

	if _, err := c.Status(addr); err != nil {
		t.Fatalf("status 1: %v", err)
	}
	if _, err := c.Status(addr); err != nil {
		t.Fatalf("status 2: %v", err)
	}
	evs := col.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	for _, e := range evs {
		if e.Verb != OpStatus || e.Depot != addr || e.Outcome != "success" {
			t.Fatalf("bad event: %+v", e)
		}
	}
	if evs[0].Reused || !evs[1].Reused {
		t.Fatalf("reuse flags = %v,%v; want false,true", evs[0].Reused, evs[1].Reused)
	}
}

// TestTraceEventBytesAndErrors checks byte crediting on success and error
// capture on failure.
func TestTraceEventBytesAndErrors(t *testing.T) {
	payload := strings.Repeat("x", 64)
	addr := scriptServer(t,
		"OK 64 64",                       // STORE response: wrote 64, new length 64
		"ERR "+wire.CodeNotFound+" gone", // LOAD response
	)
	col := obs.NewCollector(16)
	c := NewClient(WithObserver(col))
	read, writes := testCaps(addr)

	if _, err := c.Store(writes[0], []byte(payload)); err != nil {
		t.Fatalf("store: %v", err)
	}
	if _, err := c.Load(read, 0, 64); err == nil {
		t.Fatal("load should fail")
	}
	evs := col.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Verb != OpStore || evs[0].Bytes != 64 {
		t.Fatalf("store event = %+v, want 64 bytes", evs[0])
	}
	if evs[1].Verb != OpLoad || evs[1].OK() || evs[1].Bytes != 0 {
		t.Fatalf("load event = %+v, want failed with 0 bytes", evs[1])
	}
	if evs[1].Outcome != "protocol-error" {
		t.Fatalf("load outcome = %q, want protocol-error", evs[1].Outcome)
	}
}
