package ibp

import (
	"strings"
	"testing"
)

// FuzzParseCap hardens the capability parser against hostile input:
// whatever comes in, it must not panic, and anything it accepts must
// round-trip exactly.
func FuzzParseCap(f *testing.F) {
	key, _ := NewKey()
	f.Add(MintCap([]byte("s"), "h:1", key, CapRead).String())
	f.Add("ibp://h:1//READ#")
	f.Add("ibp://")
	f.Add("")
	f.Add("ibp://h:1/" + key + "/MANAGE#zz")
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseCap(s)
		if err != nil {
			return
		}
		back, err := ParseCap(c.String())
		if err != nil || back != c {
			t.Fatalf("accepted cap did not round-trip: %q", s)
		}
		if strings.ContainsAny(c.String(), " \n\r\t") {
			t.Fatalf("accepted cap renders with whitespace: %q", s)
		}
	})
}
