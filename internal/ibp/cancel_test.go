package ibp

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/wire"
)

// stallServer answers a LOAD status line and then hangs without sending the
// blob until the client tears the connection down.
func stallServer(t *testing.T, length int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				conn := wire.NewConn(raw)
				if _, err := conn.ReadLine(); err != nil {
					return
				}
				if err := conn.WriteLine("OK", wire.Itoa(length)); err != nil {
					return
				}
				// Never send the blob: block until the peer closes.
				buf := make([]byte, 1)
				raw.Read(buf)
			}(raw)
		}
	}()
	return ln.Addr().String()
}

func TestLoadCancelAbandonsStalledLoad(t *testing.T) {
	addr := stallServer(t, 64)
	sb := health.New(health.Config{Seed: 1})
	col := obs.NewCollector(8)
	c := NewClient(WithHealth(sb), WithObserver(col), WithOpTimeout(time.Minute))
	r := MintCap([]byte("s"), addr, strings.Repeat("11", KeyLen), CapRead)

	cancel := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err := c.LoadCancel(r, 0, 64, cancel)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel took %v; the conn teardown did not unblock the read", d)
	}
	// Cancellation is not the depot's fault: the Allow check may have
	// created the depot entry, but no outcome may be recorded against it.
	for _, d := range sb.Snapshot() {
		if d.Successes+d.Timeouts+d.Refusals+d.NetErrors+d.ProtocolErrors != 0 {
			t.Fatalf("health scoreboard saw a cancelled op: %+v", d)
		}
	}
	// The observer does see it, labelled as a cancellation.
	evs := col.Recent(0)
	if len(evs) != 1 || evs[0].Outcome != "cancelled" {
		t.Fatalf("events = %+v, want one cancelled", evs)
	}
}

func TestLoadCancelPreCancelledSkipsDial(t *testing.T) {
	dials := 0
	c := NewClient(ibpWithCountingDialer(&dials))
	r := MintCap([]byte("s"), "203.0.113.9:6714", strings.Repeat("22", KeyLen), CapRead)
	cancel := make(chan struct{})
	close(cancel)
	if _, err := c.LoadCancel(r, 0, 8, cancel); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if dials != 0 {
		t.Fatalf("pre-cancelled load dialed %d times", dials)
	}
}

func TestLoadCancelNilCancelCompletes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	payload := []byte("hello world")
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func(raw net.Conn) {
				defer raw.Close()
				conn := wire.NewConn(raw)
				for {
					if _, err := conn.ReadLine(); err != nil {
						return
					}
					if err := conn.WriteLine("OK", wire.Itoa(int64(len(payload)))); err != nil {
						return
					}
					if err := conn.WriteBlob(payload); err != nil {
						return
					}
				}
			}(raw)
		}
	}()
	addr := ln.Addr().String()
	r := MintCap([]byte("s"), addr, strings.Repeat("33", KeyLen), CapRead)
	got, err := NewClient().LoadCancel(r, 0, int64(len(payload)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
}

func TestIsConnReuseErrorIgnoresCancellation(t *testing.T) {
	// A cancelled exchange must never trigger the stale-pooled-conn retry:
	// the retry would re-issue the load the race already abandoned.
	if isConnReuseError(ErrCancelled) {
		t.Fatal("ErrCancelled must not look like a stale pooled connection")
	}
}
