package nws

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/netx"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Client queries a remote NWS daemon. It satisfies the same Forecast /
// Record shape as a local *Service, so the Logistical Tools can use either
// ("Download is written to check and see if the NWS is available locally",
// paper §2.3 — and fall back gracefully when it is not).
type Client struct {
	addr        string
	dialer      netx.Dialer
	clock       vclock.Clock
	dialTimeout time.Duration
	opTimeout   time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientDialer sets the dialer (default: system network).
func WithClientDialer(d netx.Dialer) ClientOption { return func(c *Client) { c.dialer = d } }

// WithClientClock sets the deadline clock.
func WithClientClock(ck vclock.Clock) ClientOption { return func(c *Client) { c.clock = ck } }

// NewRemote builds a client for the NWS daemon at addr.
func NewRemote(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:        addr,
		dialer:      netx.System(),
		clock:       vclock.Real(),
		dialTimeout: 3 * time.Second,
		opTimeout:   10 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) connect() (*wire.Conn, error) {
	raw, err := c.dialer.Dial("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("nws: dial %s: %w", c.addr, err)
	}
	if err := netx.SetOpDeadline(raw, c.clock.Now(), c.opTimeout); err != nil {
		raw.Close()
		return nil, err
	}
	return wire.NewConn(raw), nil
}

// Record submits a measurement. Errors are swallowed by design: losing a
// measurement must never fail the operation being measured.
func (c *Client) Record(src, dst string, res Resource, value float64) {
	conn, err := c.connect()
	if err != nil {
		return
	}
	defer conn.Close()
	if err := conn.WriteLine(opRecord, src, dst, string(res),
		strconv.FormatFloat(value, 'g', -1, 64)); err != nil {
		return
	}
	conn.ReadStatus()
}

// Forecast asks the daemon for a prediction; ok is false when the series
// is unknown or the daemon is unreachable.
func (c *Client) Forecast(src, dst string, res Resource) (float64, bool) {
	conn, err := c.connect()
	if err != nil {
		return 0, false
	}
	defer conn.Close()
	if err := conn.WriteLine(opForecast, src, dst, string(res)); err != nil {
		return 0, false
	}
	toks, err := conn.ReadStatus()
	if err != nil || len(toks) != 1 {
		return 0, false
	}
	v, err := strconv.ParseFloat(toks[0], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// LastRemote fetches the most recent raw measurement of a series.
func (c *Client) LastRemote(src, dst string, res Resource) (Measurement, bool) {
	conn, err := c.connect()
	if err != nil {
		return Measurement{}, false
	}
	defer conn.Close()
	if err := conn.WriteLine(opLast, src, dst, string(res)); err != nil {
		return Measurement{}, false
	}
	toks, err := conn.ReadStatus()
	if err != nil || len(toks) != 2 {
		return Measurement{}, false
	}
	v, err1 := strconv.ParseFloat(toks[0], 64)
	ts, err2 := strconv.ParseInt(toks[1], 10, 64)
	if err1 != nil || err2 != nil {
		return Measurement{}, false
	}
	return Measurement{Src: src, Dst: dst, Res: res, Value: v, Time: time.Unix(ts, 0).UTC()}, true
}
