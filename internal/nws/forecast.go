// Package nws reimplements the forecasting core of the Network Weather
// Service (Wolski et al., paper reference [WSH99]) — the layer the
// download tool consults to pick the depot with the highest forecast
// bandwidth (paper §2.3).
//
// Structure follows the real NWS: a battery of simple forecasters (last
// value, running mean, sliding means and medians over several window sizes,
// exponential smoothing at several gains) each predicts the next
// measurement; the battery tracks every forecaster's cumulative error and
// reports the prediction of whichever has been most accurate so far
// ("dynamic predictor selection").
package nws

import (
	"fmt"
	"math"
	"sort"
)

// Forecaster predicts the next value of a series from its history.
type Forecaster interface {
	// Name identifies the forecaster in diagnostics.
	Name() string
	// Observe feeds one measurement, updating internal state.
	Observe(v float64)
	// Predict returns the forecast for the next measurement; ok is false
	// until the forecaster has enough history.
	Predict() (v float64, ok bool)
}

// ---- individual forecasters ----

type lastValue struct {
	v   float64
	set bool
}

func (f *lastValue) Name() string             { return "last" }
func (f *lastValue) Observe(v float64)        { f.v, f.set = v, true }
func (f *lastValue) Predict() (float64, bool) { return f.v, f.set }

type runningMean struct {
	sum float64
	n   int
}

func (f *runningMean) Name() string { return "mean" }
func (f *runningMean) Observe(v float64) {
	f.sum += v
	f.n++
}
func (f *runningMean) Predict() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	return f.sum / float64(f.n), true
}

type slidingMean struct {
	window []float64
	k      int
}

func (f *slidingMean) Name() string { return fmt.Sprintf("mean%d", f.k) }
func (f *slidingMean) Observe(v float64) {
	f.window = append(f.window, v)
	if len(f.window) > f.k {
		f.window = f.window[1:]
	}
}
func (f *slidingMean) Predict() (float64, bool) {
	if len(f.window) == 0 {
		return 0, false
	}
	var sum float64
	for _, v := range f.window {
		sum += v
	}
	return sum / float64(len(f.window)), true
}

type slidingMedian struct {
	window []float64
	k      int
}

func (f *slidingMedian) Name() string { return fmt.Sprintf("median%d", f.k) }
func (f *slidingMedian) Observe(v float64) {
	f.window = append(f.window, v)
	if len(f.window) > f.k {
		f.window = f.window[1:]
	}
}
func (f *slidingMedian) Predict() (float64, bool) {
	n := len(f.window)
	if n == 0 {
		return 0, false
	}
	s := append([]float64(nil), f.window...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2], true
	}
	return (s[n/2-1] + s[n/2]) / 2, true
}

type expSmoothing struct {
	alpha float64
	v     float64
	set   bool
}

func (f *expSmoothing) Name() string { return fmt.Sprintf("exp%.2f", f.alpha) }
func (f *expSmoothing) Observe(v float64) {
	if !f.set {
		f.v, f.set = v, true
		return
	}
	f.v = f.alpha*v + (1-f.alpha)*f.v
}
func (f *expSmoothing) Predict() (float64, bool) { return f.v, f.set }

// ---- the battery ----

// Battery runs the standard NWS forecaster set over one measurement series
// and forecasts with the historically most accurate member.
type Battery struct {
	members []member
	n       int
}

type member struct {
	f      Forecaster
	sqErr  float64 // cumulative squared prediction error
	absErr float64
	votes  int // predictions scored
}

// NewBattery builds the default forecaster battery.
func NewBattery() *Battery {
	fs := []Forecaster{
		&lastValue{},
		&runningMean{},
		&slidingMean{k: 5},
		&slidingMean{k: 10},
		&slidingMean{k: 30},
		&slidingMedian{k: 5},
		&slidingMedian{k: 15},
		&expSmoothing{alpha: 0.05},
		&expSmoothing{alpha: 0.25},
		&expSmoothing{alpha: 0.6},
	}
	b := &Battery{}
	for _, f := range fs {
		b.members = append(b.members, member{f: f})
	}
	return b
}

// Observe scores every forecaster's standing prediction against v, then
// feeds v to all of them.
func (b *Battery) Observe(v float64) {
	for i := range b.members {
		m := &b.members[i]
		if p, ok := m.f.Predict(); ok {
			d := p - v
			m.sqErr += d * d
			if d < 0 {
				d = -d
			}
			m.absErr += d
			m.votes++
		}
		m.f.Observe(v)
	}
	b.n++
}

// Forecast returns the prediction of the forecaster with the lowest mean
// squared error so far. ok is false before any measurement has arrived.
func (b *Battery) Forecast() (v float64, ok bool) {
	v, _, ok = b.forecastDetail()
	return v, ok
}

// BestForecaster reports which forecaster currently wins selection (for
// diagnostics and tests).
func (b *Battery) BestForecaster() (name string, ok bool) {
	_, name, ok = b.forecastDetail()
	return name, ok
}

func (b *Battery) forecastDetail() (float64, string, bool) {
	bestIdx := -1
	var bestMSE float64
	for i := range b.members {
		m := &b.members[i]
		if _, ok := m.f.Predict(); !ok {
			continue
		}
		if m.votes == 0 {
			// No scoring history yet: usable but least preferred.
			if bestIdx == -1 {
				bestIdx = i
				bestMSE = 0
			}
			continue
		}
		mse := m.sqErr / float64(m.votes)
		if bestIdx == -1 || b.members[bestIdx].votes == 0 || mse < bestMSE {
			bestIdx, bestMSE = i, mse
		}
	}
	if bestIdx == -1 {
		return 0, "", false
	}
	p, _ := b.members[bestIdx].f.Predict()
	return p, b.members[bestIdx].f.Name(), true
}

// Observations reports how many measurements the battery has seen.
func (b *Battery) Observations() int { return b.n }

// BestRMSE reports the root-mean-square prediction error of the currently
// selected forecaster — how much to trust a Forecast. ok is false until a
// forecaster has been scored at least once.
func (b *Battery) BestRMSE() (float64, bool) {
	bestIdx := -1
	var bestMSE float64
	for i := range b.members {
		m := &b.members[i]
		if m.votes == 0 {
			continue
		}
		mse := m.sqErr / float64(m.votes)
		if bestIdx == -1 || mse < bestMSE {
			bestIdx, bestMSE = i, mse
		}
	}
	if bestIdx == -1 {
		return 0, false
	}
	return math.Sqrt(bestMSE), true
}
