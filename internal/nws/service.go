package nws

import (
	"sync"
	"time"

	"repro/internal/vclock"
)

// Resource names a measured quantity.
type Resource string

// Measured resources.
const (
	// Bandwidth is end-to-end throughput in megabits per second.
	Bandwidth Resource = "bandwidth"
	// Latency is round-trip time in milliseconds.
	Latency Resource = "latency"
)

// seriesKey identifies one measurement series.
type seriesKey struct {
	src, dst string
	res      Resource
}

// Measurement is one observation of a resource between two endpoints.
type Measurement struct {
	Src   string    // measuring host (client site)
	Dst   string    // measured host (depot address or name)
	Res   Resource  // what was measured
	Value float64   // Mbit/s for bandwidth, ms for latency
	Time  time.Time // when
}

// Service is an NWS instance: a measurement store plus per-series
// forecaster batteries. Safe for concurrent use.
type Service struct {
	mu      sync.Mutex
	clock   vclock.Clock
	series  map[seriesKey]*series
	history int
}

type series struct {
	battery *Battery
	last    Measurement
	recent  []Measurement // bounded ring of raw measurements
}

// NewService creates an NWS service keeping up to history raw measurements
// per series (default 512 when history <= 0).
func NewService(clock vclock.Clock, history int) *Service {
	if clock == nil {
		clock = vclock.Real()
	}
	if history <= 0 {
		history = 512
	}
	return &Service{clock: clock, series: make(map[seriesKey]*series), history: history}
}

// Record stores a measurement and updates the series forecast state.
func (s *Service) Record(src, dst string, res Resource, value float64) {
	m := Measurement{Src: src, Dst: dst, Res: res, Value: value, Time: s.clock.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := seriesKey{src, dst, res}
	sr, ok := s.series[k]
	if !ok {
		sr = &series{battery: NewBattery()}
		s.series[k] = sr
	}
	sr.battery.Observe(value)
	sr.last = m
	sr.recent = append(sr.recent, m)
	if len(sr.recent) > s.history {
		sr.recent = sr.recent[1:]
	}
}

// Forecast predicts the next value of the (src,dst,res) series. ok is false
// when no measurements exist.
func (s *Service) Forecast(src, dst string, res Resource) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[seriesKey{src, dst, res}]
	if !ok {
		return 0, false
	}
	return sr.battery.Forecast()
}

// Last returns the most recent raw measurement of the series.
func (s *Service) Last(src, dst string, res Resource) (Measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[seriesKey{src, dst, res}]
	if !ok {
		return Measurement{}, false
	}
	return sr.last, true
}

// History returns a copy of the retained raw measurements of the series,
// oldest first.
func (s *Service) History(src, dst string, res Resource) []Measurement {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[seriesKey{src, dst, res}]
	if !ok {
		return nil
	}
	return append([]Measurement(nil), sr.recent...)
}

// ForecastError reports the RMSE of the series' selected forecaster.
func (s *Service) ForecastError(src, dst string, res Resource) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[seriesKey{src, dst, res}]
	if !ok {
		return 0, false
	}
	return sr.battery.BestRMSE()
}

// SeriesCount reports how many distinct series the service tracks.
func (s *Service) SeriesCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}
