package nws

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/wire"
)

// The paper's clients "query the Network Weather Service to provide live
// performance measurements and forecasts" (§2.2). This file makes the NWS
// a network daemon in its own right: sensors RECORD measurements, clients
// ask for FORECASTs, both over the same line protocol the rest of the
// stack speaks.

// Protocol verbs.
const (
	opRecord   = "RECORD"
	opForecast = "FORECAST"
	opLast     = "LAST"
	opQuit     = "QUIT"
)

// Server exposes a Service over TCP.
type Server struct {
	svc      *Service
	ln       net.Listener
	logger   *slog.Logger
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	shutdown chan struct{}
}

// ServeNWS starts an NWS daemon around svc on addr. A nil logger
// discards; pass one built with obs.NewLogger for structured records.
func ServeNWS(addr string, svc *Service, logger *slog.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nws: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &Server{svc: svc, ln: ln, logger: logger, shutdown: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.shutdown)
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
			default:
				s.logger.Error("accept failed", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.logger.Error("connection handler panic", "panic", fmt.Sprint(r))
				}
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(raw net.Conn) {
	conn := wire.NewConn(raw)
	defer conn.Close()
	for {
		toks, err := conn.ReadLine()
		if err != nil {
			if err != io.EOF {
				s.logger.Warn("read failed", "err", err)
			}
			return
		}
		if len(toks) == 0 {
			continue
		}
		if !s.dispatch(conn, toks[0], toks[1:]) {
			return
		}
	}
}

func (s *Server) dispatch(conn *wire.Conn, op string, args []string) bool {
	var err error
	switch op {
	case opRecord:
		err = s.handleRecord(conn, args)
	case opForecast:
		err = s.handleForecast(conn, args)
	case opLast:
		err = s.handleLast(conn, args)
	case opQuit:
		return false
	default:
		err = conn.WriteErr(wire.CodeUnsupported, "unknown operation %s", op)
	}
	if err != nil {
		s.logger.Warn("operation failed", obs.KeyVerb, op, "err", err)
		return false
	}
	return true
}

// RECORD <src> <dst> <res> <value>
func (s *Server) handleRecord(conn *wire.Conn, args []string) error {
	if len(args) != 4 {
		return conn.WriteErr(wire.CodeBadRequest, "RECORD wants <src> <dst> <res> <value>")
	}
	v, err := strconv.ParseFloat(args[3], 64)
	if err != nil {
		return conn.WriteErr(wire.CodeBadRequest, "bad value %q", args[3])
	}
	s.svc.Record(args[0], args[1], Resource(args[2]), v)
	return conn.WriteOK()
}

// FORECAST <src> <dst> <res>
func (s *Server) handleForecast(conn *wire.Conn, args []string) error {
	if len(args) != 3 {
		return conn.WriteErr(wire.CodeBadRequest, "FORECAST wants <src> <dst> <res>")
	}
	v, ok := s.svc.Forecast(args[0], args[1], Resource(args[2]))
	if !ok {
		return conn.WriteErr(wire.CodeNotFound, "no measurements for series")
	}
	return conn.WriteOK(strconv.FormatFloat(v, 'g', -1, 64))
}

// LAST <src> <dst> <res>
func (s *Server) handleLast(conn *wire.Conn, args []string) error {
	if len(args) != 3 {
		return conn.WriteErr(wire.CodeBadRequest, "LAST wants <src> <dst> <res>")
	}
	m, ok := s.svc.Last(args[0], args[1], Resource(args[2]))
	if !ok {
		return conn.WriteErr(wire.CodeNotFound, "no measurements for series")
	}
	return conn.WriteOK(
		strconv.FormatFloat(m.Value, 'g', -1, 64),
		wire.Itoa(m.Time.Unix()),
	)
}
