package nws

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/depot"
	"repro/internal/ibp"
	"repro/internal/vclock"
)

func TestForecastersWarmup(t *testing.T) {
	b := NewBattery()
	if _, ok := b.Forecast(); ok {
		t.Fatal("empty battery should not forecast")
	}
	b.Observe(10)
	v, ok := b.Forecast()
	if !ok {
		t.Fatal("battery with one observation should forecast")
	}
	if v != 10 {
		t.Fatalf("first forecast = %v, want 10", v)
	}
}

func TestBatteryConstantSeries(t *testing.T) {
	b := NewBattery()
	for i := 0; i < 50; i++ {
		b.Observe(42)
	}
	v, ok := b.Forecast()
	if !ok || math.Abs(v-42) > 1e-9 {
		t.Fatalf("constant series forecast = %v", v)
	}
}

func TestBatteryPicksLastValueForTrend(t *testing.T) {
	// On a steadily rising series, last-value tracks far better than the
	// running mean; selection should not pick the running mean.
	b := NewBattery()
	for i := 0; i < 200; i++ {
		b.Observe(float64(i))
	}
	name, ok := b.BestForecaster()
	if !ok {
		t.Fatal("no forecaster selected")
	}
	if name == "mean" {
		t.Fatalf("selection picked running mean on a trending series")
	}
	v, _ := b.Forecast()
	if v < 150 {
		t.Fatalf("trend forecast = %v, want near 199", v)
	}
}

func TestBatteryMedianResistsOutliers(t *testing.T) {
	// A series that is 10 with occasional spikes to 1000: the median
	// forecaster should have the lowest error and the forecast should stay
	// near 10, not near the mean (~43).
	b := NewBattery()
	for i := 0; i < 90; i++ {
		if i%30 == 29 {
			b.Observe(1000)
		} else {
			b.Observe(10)
		}
	}
	v, ok := b.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if v > 100 {
		t.Fatalf("outlier-robust forecast = %v, want near 10", v)
	}
}

func TestBatteryForecastWithinRangeProperty(t *testing.T) {
	// Forecasts are convex combinations / order statistics of history, so
	// they must lie within [min, max] of the observations.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		b := NewBattery()
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			b.Observe(v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		v, ok := b.Forecast()
		return ok && v >= min-1e-9 && v <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceRecordForecast(t *testing.T) {
	clk := vclock.NewVirtual(time.Date(2002, 1, 11, 0, 0, 0, 0, time.UTC))
	s := NewService(clk, 4)
	if _, ok := s.Forecast("UTK", "d1", Bandwidth); ok {
		t.Fatal("forecast without data should fail")
	}
	for i := 0; i < 10; i++ {
		s.Record("UTK", "d1", Bandwidth, 95)
		clk.Advance(time.Second)
	}
	v, ok := s.Forecast("UTK", "d1", Bandwidth)
	if !ok || math.Abs(v-95) > 1e-9 {
		t.Fatalf("forecast = %v, %v", v, ok)
	}
	// Series are keyed by (src,dst,res): different src is independent.
	if _, ok := s.Forecast("UCSD", "d1", Bandwidth); ok {
		t.Fatal("different src should be a different series")
	}
	if _, ok := s.Forecast("UTK", "d1", Latency); ok {
		t.Fatal("different resource should be a different series")
	}
	last, ok := s.Last("UTK", "d1", Bandwidth)
	if !ok || last.Value != 95 || last.Src != "UTK" {
		t.Fatalf("last = %+v", last)
	}
	// History is bounded at the configured size.
	if h := s.History("UTK", "d1", Bandwidth); len(h) != 4 {
		t.Fatalf("history length = %d, want 4", len(h))
	}
	if s.SeriesCount() != 1 {
		t.Fatalf("series count = %d", s.SeriesCount())
	}
}

func TestServiceHistoryOrder(t *testing.T) {
	s := NewService(nil, 10)
	for i := 0; i < 5; i++ {
		s.Record("a", "b", Latency, float64(i))
	}
	h := s.History("a", "b", Latency)
	for i := range h {
		if h[i].Value != float64(i) {
			t.Fatalf("history out of order: %v", h)
		}
	}
	if s.History("x", "y", Latency) != nil {
		t.Fatal("unknown series history should be nil")
	}
}

func TestSensorProbesRealDepot(t *testing.T) {
	d, err := depot.Serve("127.0.0.1:0", depot.Config{
		Secret:   []byte("nws-test"),
		Capacity: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	svc := NewService(nil, 16)
	client := ibp.NewClient()
	sensor := NewSensor(svc, client, nil, "UTK", 32<<10)
	if err := sensor.ProbeDepot(d.Addr()); err != nil {
		t.Fatal(err)
	}
	bw, ok := svc.Forecast("UTK", d.Addr(), Bandwidth)
	if !ok || bw <= 0 {
		t.Fatalf("bandwidth forecast = %v, %v", bw, ok)
	}
	lat, ok := svc.Forecast("UTK", d.Addr(), Latency)
	if !ok || lat < 0 {
		t.Fatalf("latency forecast = %v, %v", lat, ok)
	}
	// Probe cleanup: the scratch allocation was deleted.
	if d.AllocationCount() != 0 {
		t.Fatalf("probe leaked %d allocations", d.AllocationCount())
	}
}

func TestSensorProbeAllContinuesPastFailures(t *testing.T) {
	d, err := depot.Serve("127.0.0.1:0", depot.Config{
		Secret:   []byte("nws-test"),
		Capacity: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	svc := NewService(nil, 16)
	client := ibp.NewClient(ibp.WithDialTimeout(100 * time.Millisecond))
	sensor := NewSensor(svc, client, nil, "UTK", 1024)
	err = sensor.ProbeAll([]string{"127.0.0.1:1", d.Addr()})
	if err == nil {
		t.Fatal("expected error from unreachable depot")
	}
	// The reachable depot was still measured.
	if _, ok := svc.Forecast("UTK", d.Addr(), Bandwidth); !ok {
		t.Fatal("reachable depot should have been probed despite earlier failure")
	}
}

func TestBestRMSE(t *testing.T) {
	b := NewBattery()
	if _, ok := b.BestRMSE(); ok {
		t.Fatal("no RMSE before scoring")
	}
	for i := 0; i < 40; i++ {
		b.Observe(100)
	}
	rmse, ok := b.BestRMSE()
	if !ok || rmse > 1e-9 {
		t.Fatalf("constant series RMSE = %v, %v", rmse, ok)
	}
	// A noisy series has nonzero error.
	n := NewBattery()
	for i := 0; i < 40; i++ {
		n.Observe(float64(100 + (i%2)*50))
	}
	rmse, ok = n.BestRMSE()
	if !ok || rmse <= 0 {
		t.Fatalf("noisy series RMSE = %v, %v", rmse, ok)
	}
	svc := NewService(nil, 16)
	svc.Record("a", "b", Bandwidth, 5)
	svc.Record("a", "b", Bandwidth, 5)
	if _, ok := svc.ForecastError("a", "b", Bandwidth); !ok {
		t.Fatal("service RMSE should be available")
	}
	if _, ok := svc.ForecastError("x", "y", Bandwidth); ok {
		t.Fatal("unknown series should have no RMSE")
	}
}
