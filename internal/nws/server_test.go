package nws

import (
	"math"
	"testing"
	"time"

	"repro/internal/vclock"
)

func startNWS(t *testing.T) (*Server, *Client) {
	t.Helper()
	svc := NewService(vclock.NewVirtual(time.Date(2002, 1, 11, 0, 0, 0, 0, time.UTC)), 64)
	s, err := ServeNWS("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, NewRemote(s.Addr())
}

func TestRemoteRecordForecast(t *testing.T) {
	_, c := startNWS(t)
	if _, ok := c.Forecast("UTK", "d1", Bandwidth); ok {
		t.Fatal("forecast before any measurement should fail")
	}
	for i := 0; i < 8; i++ {
		c.Record("UTK", "d1", Bandwidth, 12.5)
	}
	v, ok := c.Forecast("UTK", "d1", Bandwidth)
	if !ok || math.Abs(v-12.5) > 1e-9 {
		t.Fatalf("forecast = %v, %v", v, ok)
	}
	m, ok := c.LastRemote("UTK", "d1", Bandwidth)
	if !ok || m.Value != 12.5 || m.Src != "UTK" || m.Dst != "d1" {
		t.Fatalf("last = %+v, %v", m, ok)
	}
	if _, ok := c.LastRemote("UTK", "ghost", Bandwidth); ok {
		t.Fatal("unknown series should fail")
	}
}

func TestRemoteToolsCompatibility(t *testing.T) {
	// The remote client satisfies the same shape the tools use: feed and
	// query through interface-typed variables.
	_, c := startNWS(t)
	var rec Recorder = c
	rec.Record("A", "B", Latency, 42)
	var fc interface {
		Forecast(src, dst string, res Resource) (float64, bool)
	} = c
	v, ok := fc.Forecast("A", "B", Latency)
	if !ok || v != 42 {
		t.Fatalf("forecast via interface = %v, %v", v, ok)
	}
}

func TestRemoteUnreachableDegradesGracefully(t *testing.T) {
	c := NewRemote("127.0.0.1:1")
	// Record must be silent, Forecast must report not-ok; neither may
	// panic or block beyond the dial timeout.
	c.Record("a", "b", Bandwidth, 1)
	if _, ok := c.Forecast("a", "b", Bandwidth); ok {
		t.Fatal("unreachable daemon should not forecast")
	}
}

func TestServerBadRequestsKeepConnectionUsable(t *testing.T) {
	s, c := startNWS(t)
	_ = s
	// Bad value.
	c.Record("a", "b", Bandwidth, 7)
	conn, err := c.connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteLine("RECORD", "a", "b", "bandwidth", "not-a-number"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadStatus(); err == nil {
		t.Fatal("bad value should fail")
	}
	if err := conn.WriteLine("FORECAST", "a", "b", "bandwidth"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadStatus(); err != nil {
		t.Fatalf("connection should survive a bad request: %v", err)
	}
	if err := conn.WriteLine("BOGUS"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadStatus(); err == nil {
		t.Fatal("unknown op should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startNWS(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
