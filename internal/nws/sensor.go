package nws

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/ibp"
	"repro/internal/vclock"
)

// Recorder receives measurements — a local *Service or a remote *Client.
type Recorder interface {
	Record(src, dst string, res Resource, value float64)
}

// Sensor actively measures bandwidth and latency from one vantage point to
// IBP depots, feeding a Recorder. It is the "NWS sensor" deployed alongside
// each client in the paper's testbed.
type Sensor struct {
	svc        Recorder
	client     *ibp.Client
	clock      vclock.Clock
	src        string
	probeBytes int
}

// NewSensor builds a sensor measuring from vantage point src using client.
// probeBytes sets the transfer size of one bandwidth probe (default 64 KiB).
func NewSensor(svc Recorder, client *ibp.Client, clock vclock.Clock, src string, probeBytes int) *Sensor {
	if clock == nil {
		clock = vclock.Real()
	}
	if probeBytes <= 0 {
		probeBytes = 64 << 10
	}
	return &Sensor{svc: svc, client: client, clock: clock, src: src, probeBytes: probeBytes}
}

// ProbeDepot measures latency (STATUS round trip) and bandwidth (timed
// store+load of a scratch allocation) to the depot at addr and records both
// series.
func (s *Sensor) ProbeDepot(addr string) error {
	// Latency: one cheap status round trip.
	t0 := s.clock.Now()
	if _, err := s.client.Status(addr); err != nil {
		return fmt.Errorf("nws: probe %s: %w", addr, err)
	}
	rttMs := float64(s.clock.Since(t0)) / float64(time.Millisecond)
	s.svc.Record(s.src, addr, Latency, rttMs)

	// Bandwidth: allocate a scratch byte array, store probe data, time the
	// load back, then free it.
	set, err := s.client.Allocate(addr, int64(s.probeBytes), 5*time.Minute, ibp.Soft)
	if err != nil {
		return fmt.Errorf("nws: probe %s: allocate: %w", addr, err)
	}
	defer s.client.Delete(set.Manage) // best effort cleanup
	payload := make([]byte, s.probeBytes)
	if _, err := rand.Read(payload); err != nil {
		return fmt.Errorf("nws: probe payload: %w", err)
	}
	if _, err := s.client.Store(set.Write, payload); err != nil {
		return fmt.Errorf("nws: probe %s: store: %w", addr, err)
	}
	t1 := s.clock.Now()
	if _, err := s.client.Load(set.Read, 0, int64(s.probeBytes)); err != nil {
		return fmt.Errorf("nws: probe %s: load: %w", addr, err)
	}
	elapsed := s.clock.Since(t1)
	if elapsed <= 0 {
		elapsed = time.Microsecond
	}
	mbits := float64(s.probeBytes*8) / 1e6 / elapsed.Seconds()
	s.svc.Record(s.src, addr, Bandwidth, mbits)
	return nil
}

// ProbeAll probes each depot, continuing past individual failures; it
// returns the first error encountered, if any.
func (s *Sensor) ProbeAll(addrs []string) error {
	var first error
	for _, a := range addrs {
		if err := s.ProbeDepot(a); err != nil && first == nil {
			first = err
		}
	}
	return first
}
