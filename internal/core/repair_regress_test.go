package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/health"
)

// Regression tests for the repair path. Each of these pinned a real bug
// before the autonomous maintenance fleet was allowed to run the path
// continuously: a third-party augment that leaked every allocation made
// before the failing one, a coverage metric blind to coded mappings (so
// Maintain re-repaired healthy coded files forever), and Maintain passes
// that were not idempotent under churn.

func TestAugmentThirdPartyCleansUpOnPartialFailure(t *testing.T) {
	// Source replica has two fragments; the target rotation sends fragment
	// 0 to DST1 (up) and fragment 1 to DST2 (down for the whole test). The
	// augment must fail — and must not leave the fragment-0 allocation
	// orphaned on DST1.
	e := newEnv(t)
	e.addDepot("SRC1", geo.UTK, nil)
	e.addDepot("SRC2", geo.UTK, nil)
	e.addDepot("DST1", geo.Harvard, nil)
	dead := faultnet.Windows{Down: []faultnet.Window{{From: envStart.Add(-time.Hour), To: envStart.Add(24 * time.Hour)}}}
	e.addDepot("DST2", geo.Harvard, dead)
	tl := e.tools(geo.UTK, false)

	x, err := tl.Upload("f", payload(48<<10), UploadOptions{
		Fragments: 2, Depots: e.infosFor("SRC1", "SRC2"), Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Augment(x, AugmentOptions{
		Replicas:   1,
		ThirdParty: true,
		Depots:     e.infosFor("DST1", "DST2"),
	}); err == nil {
		t.Fatal("third-party augment with a dead target should fail")
	}
	st, err := tl.IBP.Status(e.depots["DST1"].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Allocations != 0 {
		t.Fatalf("DST1 holds %d orphan allocation(s) after the failed augment (%d bytes leaked)",
			st.Allocations, st.UsedBytes)
	}
}

func TestMaintainHealthyCodedFileIsNoop(t *testing.T) {
	// A 3+2 Reed-Solomon file with every block reachable tolerates two
	// losses — effective redundancy 3, comfortably above the default
	// coverage floor of 2. Maintain must leave it alone instead of piling
	// replicas on top of the coding group every pass.
	e := newEnv(t)
	for _, n := range []string{"A", "B", "C", "D", "E"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(30 << 10)
	x, err := tl.UploadRS("f", data, CodedOptions{
		DataBlocks: 3, ParityBlocks: 2, Checksum: true,
		Depots: e.infosFor("A", "B", "C", "D", "E"), Duration: 48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := tl.Maintain(x, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AddedReplicas != 0 || rep.TrimmedDead != 0 || rep.Refreshed != 0 {
		t.Fatalf("healthy coded maintain acted: %+v", rep)
	}
	if len(out.Mappings) != len(x.Mappings) {
		t.Fatalf("mappings %d -> %d", len(x.Mappings), len(out.Mappings))
	}
	if rep.MinCoverage != 3 {
		t.Fatalf("coded coverage = %d, want 3 (5 blocks, any 3 rebuild)", rep.MinCoverage)
	}
	// And stays a no-op on the next pass: the first one must not have
	// manufactured work for the second.
	_, rep2, err := tl.Maintain(out, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AddedReplicas != 0 || rep2.TrimmedDead != 0 {
		t.Fatalf("second coded maintain acted: %+v", rep2)
	}
}

func TestMaintainRepairsDegradedCodedFile(t *testing.T) {
	// Losing two blocks of a 3+2 group leaves exactly 3 of 5: still
	// recoverable, but with zero losses to spare (effective redundancy 1).
	// Maintain must now repair — and the repaired exNode must again be
	// a no-op on the following pass.
	e := newEnv(t)
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(30 << 10)
	x, err := tl.UploadRS("f", data, CodedOptions{
		DataBlocks: 3, ParityBlocks: 2, Checksum: true,
		Depots: e.infosFor("A", "B", "C", "D", "E"), Duration: 48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range x.Mappings[:2] {
		if _, err := tl.IBP.Delete(m.Manage); err != nil {
			t.Fatal(err)
		}
	}
	out, rep, err := tl.Maintain(x, MaintainOptions{
		MinCoverage: 2, RefreshBelow: time.Hour, RefreshTo: 48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedDead != 2 {
		t.Fatalf("trimmed = %d, want 2", rep.TrimmedDead)
	}
	if rep.AddedReplicas != 1 {
		t.Fatalf("added = %d, want 1 (3-of-5 left: one loss from data loss)", rep.AddedReplicas)
	}
	got, _, err := tl.Download(out, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after coded repair: %v", err)
	}
	_, rep2, err := tl.Maintain(out, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AddedReplicas != 0 || rep2.TrimmedDead != 0 {
		t.Fatalf("pass after coded repair acted: %+v", rep2)
	}
}

func TestMaintainSecondPassIsNoop(t *testing.T) {
	// One pass over a damaged file does all the work; the next pass over
	// its output finds nothing to do. Without idempotence a maintenance
	// daemon would grow every file it visits without bound.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	e.addDepot("C", geo.UNC, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(24 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 48 * time.Hour, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.IBP.Delete(x.Mappings[0].Manage); err != nil {
		t.Fatal(err)
	}
	opts := MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour, RefreshTo: 48 * time.Hour}
	out, rep, err := tl.Maintain(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedDead != 1 || rep.AddedReplicas != 1 {
		t.Fatalf("first pass: %+v", rep)
	}
	out2, rep2, err := tl.Maintain(out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Refreshed != 0 || rep2.TrimmedDead != 0 || rep2.AddedReplicas != 0 {
		t.Fatalf("second pass acted: %+v", rep2)
	}
	if len(out2.Mappings) != len(out.Mappings) {
		t.Fatalf("second pass changed mappings: %d -> %d", len(out.Mappings), len(out2.Mappings))
	}
}

func TestMaintainRefreshesBeforeExpiryNotTrim(t *testing.T) {
	// Refresh-then-trim ordering on the virtual clock: a pass that runs
	// minutes before expiry must extend the allocations, so that after the
	// original deadline passes nothing is trimmed and nothing re-uploaded.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 2 * time.Hour, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5 virtual minutes before the allocations lapse.
	e.clk.Advance(115 * time.Minute)
	opts := MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour, RefreshTo: 72 * time.Hour}
	out, rep, err := tl.Maintain(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 2 {
		t.Fatalf("refreshed = %d, want 2", rep.Refreshed)
	}
	if rep.TrimmedDead != 0 || rep.AddedReplicas != 0 {
		t.Fatalf("pre-expiry pass did more than refresh: %+v", rep)
	}
	// Sail past the original expiry: the refresh must have carried both
	// allocations across, leaving the next pass nothing to do.
	e.clk.Advance(24 * time.Hour)
	out2, rep2, err := tl.Maintain(out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TrimmedDead != 0 || rep2.AddedReplicas != 0 {
		t.Fatalf("post-expiry pass acted (refresh did not stick): %+v", rep2)
	}
	got, _, err := tl.Download(out2, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after refreshed expiry: %v", err)
	}
}

func TestMaintainDoesNotTrimWhileCircuitOpen(t *testing.T) {
	// An open circuit means "we cannot tell whether the allocation is
	// gone" — exactly the depot-down case the paper says not to trim on.
	// Even if the allocation really is gone, trimming must wait until the
	// breaker recloses and a probe can prove it.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	e.addDepot("C", geo.UNC, nil)
	tl := e.tools(geo.UTK, false)
	tl.Health = health.New(health.Config{FailureThreshold: 3, Clock: e.clk})
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 48 * time.Hour, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The allocation on A is truly gone, but A's circuit is open: Maintain
	// must not trust stale knowledge, must not probe, must not trim.
	addrA := x.Mappings[0].Manage.Addr
	if _, err := tl.IBP.Delete(x.Mappings[0].Manage); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tl.Health.Report(addrA, health.Timeout, 0)
	}
	if !tl.Health.Blocked(addrA) {
		t.Fatal("circuit for A did not open")
	}
	out, rep, err := tl.Maintain(x, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Minute, RefreshTo: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedDead != 0 {
		t.Fatalf("trimmed %d mapping(s) behind an open circuit", rep.TrimmedDead)
	}
	// Coverage repair still runs — A counts as unavailable — but the
	// blocked mapping stays in the exNode for a post-recovery verdict.
	if rep.AddedReplicas != 1 {
		t.Fatalf("added = %d, want 1", rep.AddedReplicas)
	}
	kept := false
	for _, m := range out.Mappings {
		if m.Manage.Addr == addrA {
			kept = true
		}
	}
	if !kept {
		t.Fatal("mapping behind the open circuit was dropped")
	}
}
