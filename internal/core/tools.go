// Package core implements the Logistical Tools — the top implemented layer
// of the Network Storage Stack (paper §2.3) and this reproduction's primary
// contribution surface.
//
// The tools aggregate IBP storage through exNodes: Upload stripes and
// replicates local data across depots discovered through the L-Bone;
// Download reassembles a file (or range) by splitting it into extents at
// segment boundaries and fetching each extent from the best available
// depot, failing over on timeout or error, guided by NWS bandwidth
// forecasts when available; List, Refresh, Augment, Trim and Route manage
// the exNode over time. Beyond the paper's shipped tools, the package
// implements its stated future work: XOR-parity and Reed-Solomon coded
// storage, end-to-end checksums, and threaded (parallel) downloads.
package core

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/nws"
	"repro/internal/obs"
	"repro/internal/transfer"
	"repro/internal/vclock"
)

// DepotSource abstracts the L-Bone: anything that can answer depot
// queries. *lbone.Client satisfies it over the network; *lbone.Registry
// can be adapted in-process via RegistrySource.
type DepotSource interface {
	Query(req lbone.Requirements) ([]lbone.DepotInfo, error)
}

// NWSSource is the slice of the Network Weather Service the tools consume:
// forecasts to rank download candidates, and measurement feedback from the
// downloads themselves. Both *nws.Service (local) and *nws.Client (remote
// daemon) satisfy it.
type NWSSource interface {
	Forecast(src, dst string, res nws.Resource) (float64, bool)
	Record(src, dst string, res nws.Resource, value float64)
}

// RegistrySource adapts an in-process registry to DepotSource.
type RegistrySource struct{ Reg *lbone.Registry }

// Query implements DepotSource.
func (r RegistrySource) Query(req lbone.Requirements) ([]lbone.DepotInfo, error) {
	return r.Reg.Query(req), nil
}

// Tools is the Logistical Tools client. Configure once per vantage point.
type Tools struct {
	// IBP is the depot client (required).
	IBP *ibp.Client
	// LBone answers depot discovery queries (required for Upload/Augment
	// without explicit depot lists).
	LBone DepotSource
	// NWS supplies bandwidth forecasts; nil disables the NWS strategy
	// (downloads then use static proximity, as the paper describes for
	// hosts without a local NWS). Use a local *nws.Service or a remote
	// *nws.Client.
	NWS NWSSource
	// Clock measures download durations and expirations (default real).
	Clock vclock.Clock
	// Site names this client's location for NWS series ("UTK", …).
	Site string
	// Loc is the client's coordinates for static proximity ranking.
	Loc geo.Point
	// Logger, when set, receives per-attempt diagnostics as structured
	// records (obs.NewLogger wires them into the flight recorder too).
	Logger *slog.Logger
	// Forecast, when set, records the NWS forecast error after each
	// measured download: the bandwidth the forecast predicted for the
	// depot pair versus what the transfer actually achieved.
	Forecast *obs.ForecastTracker
	// Health is the depot scoreboard shared with the IBP client. When set
	// (to the same scoreboard passed via ibp.WithHealth), download ranking
	// demotes open-circuit depots below every healthy candidate, upload
	// placement and maintenance prefer healthy depots, and Refresh skips
	// depots that would only fail fast. Nil disables health-aware
	// behaviour.
	Health *health.Scoreboard
	// Transfer is the adaptive transfer engine. When set, extent fetches
	// run through its per-depot concurrency limiter, may hedge a slow
	// attempt against the next-ranked replica, and concurrent decodes of
	// the same coding group collapse into one. Nil reproduces the plain
	// sequential failover path.
	Transfer *transfer.Engine
	// Directory is the replicated exNode directory (internal/registry).
	// When set, StoreExNode/LoadExNode/DownloadByName resolve exNodes by
	// name through the quorum instead of loose client-side XML files.
	Directory ExNodeDirectory
}

func (t *Tools) clock() vclock.Clock {
	if t.Clock == nil {
		return vclock.Real()
	}
	return t.Clock
}

func (t *Tools) logf(format string, args ...any) {
	if t.Logger != nil {
		t.Logger.Info(fmt.Sprintf(format, args...))
	}
}

// healthBlocked reports whether requests to addr would currently fail fast
// at the IBP layer because the depot's circuit is open. Without a
// scoreboard nothing is ever blocked.
func (t *Tools) healthBlocked(addr string) bool {
	return t.Health != nil && t.Health.Blocked(addr)
}

// preferHealthy stably reorders depot candidates so open-circuit depots
// come last: placement still falls back to them if every healthy depot
// refuses, but never burns a dial timeout on a known-dead depot first.
func (t *Tools) preferHealthy(depots []lbone.DepotInfo) []lbone.DepotInfo {
	if t.Health == nil {
		return depots
	}
	healthy := make([]lbone.DepotInfo, 0, len(depots))
	var blocked []lbone.DepotInfo
	for _, d := range depots {
		if t.healthBlocked(d.Addr) {
			blocked = append(blocked, d)
		} else {
			healthy = append(healthy, d)
		}
	}
	return append(healthy, blocked...)
}

// depotDirectory returns the current L-Bone view keyed by depot address,
// for static proximity ranking. Missing L-Bone yields an empty directory.
func (t *Tools) depotDirectory() map[string]lbone.DepotInfo {
	out := map[string]lbone.DepotInfo{}
	if t.LBone == nil {
		return out
	}
	depots, err := t.LBone.Query(lbone.Requirements{})
	if err != nil {
		t.logf("core: lbone query failed: %v", err)
		return out
	}
	for _, d := range depots {
		out[d.Addr] = d
	}
	return out
}

// DefaultDuration is the allocation lifetime used when options leave it
// zero (the paper's tests allocated for days and refreshed).
const DefaultDuration = 10 * 24 * time.Hour
