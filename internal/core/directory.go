package core

import (
	"errors"
	"fmt"

	"repro/internal/exnode"
	"repro/internal/registry"
)

// ExNodeDirectory abstracts the replicated exNode directory: the tools
// store exNodes after uploads and resolve them by name for downloads.
// *registry.Directory satisfies it over the quorum protocol.
type ExNodeDirectory interface {
	// PutExNode installs x under name at the version one past prev
	// (prev=0 for a fresh name) and returns the installed version.
	PutExNode(name string, x *exnode.ExNode, prev int64) (int64, error)
	// GetExNode reads the freshest quorum copy of name.
	GetExNode(name string) (*exnode.ExNode, int64, error)
}

// DiscoveryError wraps a depot-discovery or directory failure with its
// freestore fault class (DESIGN §9). An unreachable or majority-lost
// registry is *detected* — the client noticed the fault model's
// assumption break and failed fast rather than proceeding on an empty
// depot list; anything else is untolerated.
type DiscoveryError struct {
	Class registry.Class
	Op    string
	Err   error
}

// Error names the class so operators can grep postmortems by taxonomy.
func (e *DiscoveryError) Error() string {
	return fmt.Sprintf("core: %s (%s failure): %v", e.Op, e.Class, e.Err)
}

// Unwrap exposes the cause for errors.Is/As (including ErrMajorityLost
// and lbone.ErrNoRegistry).
func (e *DiscoveryError) Unwrap() error { return e.Err }

// discoveryErr classifies err from a discovery path.
func discoveryErr(op string, err error) error {
	return &DiscoveryError{Class: registry.Classify(err), Op: op, Err: err}
}

// ErrNoDirectory reports a by-name operation on Tools with no directory
// configured.
var ErrNoDirectory = errors.New("core: no exNode directory configured")

// StoreExNode publishes x into the replicated directory under name. prev
// is the version a preceding Load returned (0 when first publishing).
func (t *Tools) StoreExNode(name string, x *exnode.ExNode, prev int64) (int64, error) {
	if t.Directory == nil {
		return 0, ErrNoDirectory
	}
	version, err := t.Directory.PutExNode(name, x, prev)
	if err != nil {
		return 0, discoveryErr("exnode store", err)
	}
	return version, nil
}

// LoadExNode resolves name through the replicated directory.
func (t *Tools) LoadExNode(name string) (*exnode.ExNode, int64, error) {
	if t.Directory == nil {
		return nil, 0, ErrNoDirectory
	}
	x, version, err := t.Directory.GetExNode(name)
	if err != nil {
		return nil, 0, discoveryErr("exnode load", err)
	}
	return x, version, nil
}

// DownloadByName resolves name through the directory and downloads the
// whole file: the by-name path the paper's loose .xnd files could not
// offer.
func (t *Tools) DownloadByName(name string, opts DownloadOptions) ([]byte, *Report, error) {
	x, _, err := t.LoadExNode(name)
	if err != nil {
		return nil, nil, err
	}
	return t.Download(x, opts)
}
