package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bufpool"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/ibp"
	"repro/internal/lbone"
)

// Refresh extends the time limits of every IBP byte array composing the
// file to now+duration (paper §2.3). It updates mapping expirations in
// place and returns the number refreshed plus the first error encountered
// (refreshing continues past individual failures — a partially refreshed
// exNode is still better than an expired one). Mappings on the same depot
// are extended in one pipelined BATCH round trip; per-op results keep
// partial failure composable.
func (t *Tools) Refresh(x *exnode.ExNode, duration time.Duration) (int, error) {
	var firstErr error
	fail := func(m *exnode.Mapping, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("core: refresh %s segment [%d,%d): %w", m.Depot, m.Offset, m.End(), err)
		}
	}
	// Group refreshable mappings by depot, preserving order within a group.
	byDepot := map[string][]*exnode.Mapping{}
	var addrs []string
	for _, m := range x.Mappings {
		if m.Manage.IsZero() {
			continue
		}
		if t.healthBlocked(m.Manage.Addr) {
			// The circuit is open: Extend would fail fast anyway, and the
			// failure would count against nothing useful. Skip it; the next
			// Refresh after the breaker recloses will catch the mapping up.
			t.logf("core: refresh %s segment [%d,%d): skipped, depot circuit open", m.Depot, m.Offset, m.End())
			fail(m, health.ErrCircuitOpen)
			continue
		}
		if _, ok := byDepot[m.Manage.Addr]; !ok {
			addrs = append(addrs, m.Manage.Addr)
		}
		byDepot[m.Manage.Addr] = append(byDepot[m.Manage.Addr], m)
	}
	refreshed := 0
	for _, addr := range addrs {
		ms := byDepot[addr]
		// One EXTEND per mapping, chunked to the batch size cap.
		for lo := 0; lo < len(ms); lo += ibp.MaxBatchOps {
			hi := lo + ibp.MaxBatchOps
			if hi > len(ms) {
				hi = len(ms)
			}
			chunk := ms[lo:hi]
			ops := make([]ibp.BatchOp, len(chunk))
			for i, m := range chunk {
				ops[i] = ibp.ExtendOp(m.Manage, duration)
			}
			res, err := t.IBP.Batch(addr, ops)
			if err != nil {
				// The whole exchange failed (dial error, circuit open):
				// every mapping in the chunk stays unrefreshed.
				for _, m := range chunk {
					fail(m, err)
				}
				continue
			}
			for i, m := range chunk {
				if res[i].Err != nil {
					fail(m, res[i].Err)
					continue
				}
				m.Expires = res[i].Expires
				refreshed++
			}
		}
	}
	return refreshed, firstErr
}

// AugmentOptions parameterize Augment.
type AugmentOptions struct {
	// Replicas is how many new copies to add (default 1).
	Replicas int
	// Fragments per new replica (default 1).
	Fragments int
	// Near places the new replicas close to this point (paper §2.3:
	// "these replicas may have a specified network proximity").
	Near *geo.Point
	// Depots bypasses discovery.
	Depots []lbone.DepotInfo
	// Duration for the new allocations.
	Duration time.Duration
	// Checksum new fragments.
	Checksum bool
	// Download tuning used to fetch the current contents.
	Download DownloadOptions
	// ThirdParty replicates with depot-to-depot COPY transfers instead of
	// downloading and re-uploading: the data never passes through this
	// client. Requires a fully-available source replica; fragment
	// boundaries (and checksums) of that replica are preserved.
	ThirdParty bool
}

// Augment adds replicas to the exNode and returns an updated copy: it
// downloads the file's current contents, uploads the new copies, and
// merges the mappings (paper §2.3).
func (t *Tools) Augment(x *exnode.ExNode, opts AugmentOptions) (*exnode.ExNode, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.ThirdParty {
		return t.augmentThirdParty(x, opts)
	}
	dlOpts := opts.Download
	if x.Encrypted() && dlOpts.DecryptionKey == nil {
		// Replicate the sealed bytes verbatim: augment never needs the key.
		dlOpts.Raw = true
	}
	data, _, err := t.Download(x, dlOpts)
	if err != nil {
		return nil, fmt.Errorf("core: augment: fetching current contents: %w", err)
	}
	addition, err := t.Upload(x.Name, data, UploadOptions{
		Replicas:  opts.Replicas,
		Fragments: opts.Fragments,
		Near:      opts.Near,
		Depots:    opts.Depots,
		Duration:  opts.Duration,
		Checksum:  opts.Checksum,
	})
	// Download's result is pool-backed and Upload does not retain it past
	// return; release it on every path before looking at the error.
	bufpool.Put(data)
	if err != nil {
		return nil, fmt.Errorf("core: augment: %w", err)
	}
	out := x.Clone()
	base := 0
	for _, m := range out.Mappings {
		if m.IsReplica() && m.Replica+1 > base {
			base = m.Replica + 1
		}
	}
	for _, m := range addition.Mappings {
		mm := *m
		mm.Replica += base
		out.Add(&mm)
	}
	return out, out.Validate()
}

// augmentThirdParty adds replicas with depot-to-depot COPY: for each
// fragment of a fully-available source replica, it allocates space on a
// target depot and asks the source depot to push the bytes directly.
func (t *Tools) augmentThirdParty(x *exnode.ExNode, opts AugmentOptions) (*exnode.ExNode, error) {
	duration := opts.Duration
	if duration <= 0 {
		duration = DefaultDuration
	}
	targets := opts.Depots
	if targets == nil {
		if t.LBone == nil {
			return nil, errors.New("core: third-party augment needs explicit depots or an L-Bone")
		}
		near := opts.Near
		if near == nil {
			near = &t.Loc
		}
		var err error
		targets, err = t.LBone.Query(lbone.Requirements{MinDuration: duration, Near: near})
		if err != nil {
			return nil, discoveryErr("depot discovery", err)
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("core: no depots available for third-party augment")
	}
	source, err := t.pickAvailableReplica(x)
	if err != nil {
		return nil, fmt.Errorf("core: third-party augment: %w", err)
	}

	out := x.Clone()
	base := 0
	for _, m := range out.Mappings {
		if m.IsReplica() && m.Replica+1 > base {
			base = m.Replica + 1
		}
	}
	now := t.clock().Now()
	// Every allocation made across the r/j loops, so a mid-loop failure
	// can release all of them — not just the one that failed. The depots
	// would eventually reap the orphans at expiry, but a repair daemon
	// retrying a flaky augment would leak capacity for days at a time.
	var created []ibp.Cap
	abort := func(err error) (*exnode.ExNode, error) {
		for _, c := range created {
			if _, derr := t.IBP.Delete(c); derr != nil {
				t.logf("core: third-party augment: releasing %s: %v", c.Addr, derr)
			}
		}
		return nil, err
	}
	for r := 0; r < opts.Replicas; r++ {
		for j, src := range source {
			target := targets[(j+r)%len(targets)]
			set, err := t.IBP.Allocate(target.Addr, src.Length, duration, ibp.Hard)
			if err != nil {
				return abort(fmt.Errorf("core: third-party augment on %s: %w", target.Name, err))
			}
			created = append(created, set.Manage)
			if _, err := t.IBP.Copy(src.Read, 0, src.Length, set.Write); err != nil {
				return abort(fmt.Errorf("core: third-party copy %s -> %s: %w", src.Depot, target.Name, err))
			}
			out.Add(&exnode.Mapping{
				Offset:   src.Offset,
				Length:   src.Length,
				Read:     set.Read,
				Write:    set.Write,
				Manage:   set.Manage,
				Replica:  base + r,
				Depot:    target.Name,
				Expires:  now.Add(duration),
				Checksum: src.Checksum, // same bytes, same digest
			})
		}
	}
	if err := out.Validate(); err != nil {
		return abort(fmt.Errorf("core: third-party augment: %w", err))
	}
	return out, nil
}

// pickAvailableReplica returns the fragments of a replica that fully
// covers the file with every fragment currently reachable.
func (t *Tools) pickAvailableReplica(x *exnode.ExNode) ([]*exnode.Mapping, error) {
	for _, r := range t.rankReplicas(x) {
		ms := x.ReplicaMappings(r)
		if len(ms) == 0 {
			continue
		}
		complete := true
		var pos int64
		for _, m := range ms {
			if m.Offset > pos {
				complete = false
				break
			}
			if m.End() > pos {
				pos = m.End()
			}
			if _, err := t.IBP.Probe(m.Manage); err != nil {
				complete = false
				break
			}
		}
		if complete && pos >= x.Size {
			return ms, nil
		}
	}
	return nil, errors.New("no fully-available replica to copy from")
}

// TrimOptions select which fragments Trim removes.
type TrimOptions struct {
	// Indices removes specific mappings by index into x.Mappings.
	Indices []int
	// Expired removes every mapping whose expiration has passed.
	Expired bool
	// Replica, when non-nil, removes all mappings of that replica index.
	Replica *int
	// DeleteFromIBP also decrements the IBP allocations (paper §2.3:
	// "the fragments may be only deleted from the exnode, and not from
	// IBP").
	DeleteFromIBP bool
}

// Trim deletes fragments from the exNode and returns a new exNode (paper
// §2.3). Unless TrimOptions.DeleteFromIBP is set the byte arrays remain on
// their depots.
func (t *Tools) Trim(x *exnode.ExNode, opts TrimOptions) (*exnode.ExNode, error) {
	if opts.Replica == nil && len(opts.Indices) == 0 && !opts.Expired {
		return nil, errors.New("core: trim: nothing selected")
	}
	doomedIdx := map[int]bool{}
	for _, i := range opts.Indices {
		if i < 0 || i >= len(x.Mappings) {
			return nil, fmt.Errorf("core: trim: index %d out of range", i)
		}
		doomedIdx[i] = true
	}
	now := t.clock().Now()
	out := x.Clone()
	var kept []*exnode.Mapping
	for i, m := range out.Mappings {
		doomed := doomedIdx[i]
		if opts.Expired && !m.Expires.IsZero() && now.After(m.Expires) {
			doomed = true
		}
		if opts.Replica != nil && m.IsReplica() && m.Replica == *opts.Replica {
			doomed = true
		}
		if !doomed {
			kept = append(kept, m)
			continue
		}
		if opts.DeleteFromIBP && !m.Manage.IsZero() {
			if _, err := t.IBP.Delete(m.Manage); err != nil {
				t.logf("core: trim: deleting segment on %s: %v", m.Depot, err)
			}
		}
	}
	out.Mappings = kept
	return out, out.Validate()
}

// Route moves the file toward a new network location by combining augment
// and trim (paper §2.3 "Routing"): first replicate near the target, then
// drop the old replicas.
func (t *Tools) Route(x *exnode.ExNode, near geo.Point, opts AugmentOptions) (*exnode.ExNode, error) {
	opts.Near = &near
	augmented, err := t.Augment(x, opts)
	if err != nil {
		return nil, fmt.Errorf("core: route: %w", err)
	}
	// Drop every replica that existed before augmentation.
	old := map[int]bool{}
	for _, m := range x.Mappings {
		if m.IsReplica() {
			old[m.Replica] = true
		}
	}
	out := augmented
	for r := range old {
		r := r
		out, err = t.Trim(out, TrimOptions{Replica: &r, DeleteFromIBP: true})
		if err != nil {
			return nil, fmt.Errorf("core: route: trimming old replica %d: %w", r, err)
		}
	}
	return out, nil
}
