package core

import (
	"fmt"

	"repro/internal/exnode"
	"repro/internal/integrity"
)

// VerifyEntry is the integrity status of one mapping.
type VerifyEntry struct {
	Index   int
	Mapping *exnode.Mapping
	// State is one of "ok", "unavailable", "corrupt", "unchecked" (no
	// recorded digest).
	State string
	Err   error
}

// VerifyResult summarizes a full integrity audit.
type VerifyResult struct {
	Entries     []VerifyEntry
	OK          int
	Unavailable int
	Corrupt     int
	Unchecked   int
}

// Healthy reports whether every checked segment verified.
func (r *VerifyResult) Healthy() bool { return r.Corrupt == 0 && r.Unavailable == 0 }

// Verify reads every mapping of the exNode in full and checks its recorded
// digest — the end-to-end audit that the paper's checksum metadata enables
// (§4). Unlike Download, Verify visits every replica and coded block, not
// just the fastest copy of each extent, so it finds silent corruption on
// any depot.
func (t *Tools) Verify(x *exnode.ExNode) *VerifyResult {
	res := &VerifyResult{}
	for i, m := range x.Mappings {
		e := VerifyEntry{Index: i, Mapping: m}
		length := m.Length
		if !m.IsReplica() {
			length = m.BlockSize
		}
		data, err := t.IBP.Load(m.Read, 0, length)
		switch {
		case err != nil:
			e.State = "unavailable"
			e.Err = err
			res.Unavailable++
		case m.Checksum == "":
			e.State = "unchecked"
			res.Unchecked++
		default:
			if verr := integrity.Verify(data, m.Checksum); verr != nil {
				e.State = "corrupt"
				e.Err = verr
				res.Corrupt++
			} else {
				e.State = "ok"
				res.OK++
			}
		}
		res.Entries = append(res.Entries, e)
	}
	return res
}

// String renders a one-line summary.
func (r *VerifyResult) String() string {
	return fmt.Sprintf("verify: %d ok, %d corrupt, %d unavailable, %d unchecked of %d segments",
		r.OK, r.Corrupt, r.Unavailable, r.Unchecked, len(r.Entries))
}
