//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Byte-level
// allocation pins (TotalAlloc deltas) are skipped under -race: the
// instrumentation's own shadow allocations inflate the numbers the tests
// account for.
const raceEnabled = true
