package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
)

// TestParallelUploadAbortsAndCleansUp kills one of two depots just after a
// parallel upload starts. The survivor is sized so it cannot absorb the
// dead depot's fragments, so the upload must fail — and when it does, every
// allocation that DID succeed must be deleted, not left stranded on the
// survivor.
func TestParallelUploadAbortsAndCleansUp(t *testing.T) {
	e := newEnv(t)
	// A can hold 5 of the 8 16KB fragments: its own 4 plus one failover.
	dA := e.addDepotCap("A", geo.UTK, nil, 80<<10)
	// B dies 2ms into the upload — mid-flight for every one of its
	// fragments (allocate+store costs >2ms of virtual time), so all of
	// B's fragments fail over to A, which cannot take them all.
	e.addDepot("B", geo.UTK, faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(2 * time.Millisecond), To: envStart.Add(time.Hour)},
	}})
	tl := e.tools(geo.UTK, false)

	rep := &UploadReport{}
	data := payload(128 << 10)
	_, err := tl.Upload("f", data, UploadOptions{
		Fragments:   8,
		Parallelism: 4,
		Depots:      e.infosFor("A", "B"),
		Report:      rep,
	})
	if err == nil {
		t.Fatal("upload with a dead depot and a too-small survivor should fail")
	}
	if errors.Is(err, ErrUploadAborted) {
		t.Fatalf("Upload returned the abort marker instead of the real error: %v", err)
	}
	if rep.OK() {
		t.Fatal("report should record the failure")
	}
	// The survivor must not be left holding fragments of a failed upload.
	if n := dA.AllocationCount(); n != 0 {
		t.Fatalf("depot A holds %d leaked allocations after failed upload", n)
	}
	if rep.Cleaned == 0 {
		t.Fatal("expected at least one stranded allocation to be cleaned up")
	}
	// The timeline must show B failing.
	sawBFailure := false
	for _, f := range rep.Fragments {
		for _, a := range f.Trail {
			if a.Depot == "B" && !a.OK() {
				sawBFailure = true
			}
		}
	}
	if !sawBFailure {
		t.Fatalf("no failed attempt on B in the timeline:\n%s", rep.Timeline())
	}
}

// TestSequentialUploadCleansUpOnFailure covers the sequential path of the
// same audit: first fragment lands, second cannot be placed anywhere, and
// the first's allocation must be reclaimed.
func TestSequentialUploadCleansUpOnFailure(t *testing.T) {
	e := newEnv(t)
	// Room for exactly one of the two 16KB fragments.
	dA := e.addDepotCap("A", geo.UTK, nil, 16<<10)
	tl := e.tools(geo.UTK, false)

	rep := &UploadReport{}
	_, err := tl.Upload("f", payload(32<<10), UploadOptions{
		Fragments: 2,
		Depots:    e.infosFor("A"),
		Report:    rep,
	})
	if err == nil {
		t.Fatal("upload beyond capacity should fail")
	}
	if n := dA.AllocationCount(); n != 0 {
		t.Fatalf("depot A holds %d leaked allocations", n)
	}
	if rep.Cleaned != 1 {
		t.Fatalf("cleaned = %d, want 1", rep.Cleaned)
	}
}

// TestUploadReportTimeline checks the report on a successful upload that
// needed a failover: the trail must keep the failed attempt.
func TestUploadReportTimeline(t *testing.T) {
	e := newEnv(t)
	down := faultnet.Windows{Down: []faultnet.Window{{From: envStart, To: envStart.Add(time.Hour)}}}
	e.addDepot("DEAD", geo.UTK, down)
	e.addDepot("LIVE", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)

	rep := &UploadReport{}
	x, err := tl.Upload("f", payload(4<<10), UploadOptions{
		Depots: e.infosFor("DEAD", "LIVE"),
		Report: rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Fragments) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	f := rep.Fragments[0]
	if f.Depot != "LIVE" {
		t.Fatalf("placed on %s, want LIVE", f.Depot)
	}
	if len(f.Trail) != 2 || f.Trail[0].OK() || !f.Trail[1].OK() {
		t.Fatalf("trail should be [DEAD failed, LIVE ok]: %+v", f.Trail)
	}
	if f.Trail[0].Depot != "DEAD" || f.Trail[0].Err == "" {
		t.Fatalf("first attempt: %+v", f.Trail[0])
	}
	if rep.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", rep.Failovers)
	}
	if rep.Bytes != 4<<10 || rep.Duration <= 0 {
		t.Fatalf("bytes/duration: %+v", rep)
	}
	tlText := rep.Timeline()
	if !strings.Contains(tlText, "DEAD") || !strings.Contains(tlText, "FAILED") {
		t.Fatalf("timeline text:\n%s", tlText)
	}
	if len(x.Mappings) != 1 {
		t.Fatalf("mappings = %d", len(x.Mappings))
	}
}

// TestDownloadReportTimeline checks the download-side trail: a failed
// attempt on the preferred depot followed by the successful failover.
func TestDownloadReportTimeline(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(time.Hour), To: envStart.Add(3 * time.Hour)},
	}})
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)

	data := payload(16 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("B", "A")})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(90 * time.Minute)
	_, rep, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	trail := rep.Extents[0].Trail
	if len(trail) != 2 || trail[0].OK() || !trail[1].OK() {
		t.Fatalf("trail should be [A failed, B ok]: %+v", trail)
	}
	if trail[0].Depot != "A" || trail[1].Depot != "B" {
		t.Fatalf("trail depots: %+v", trail)
	}
	if trail[1].Bytes != 16<<10 {
		t.Fatalf("winner bytes = %d", trail[1].Bytes)
	}
	if !strings.Contains(rep.Timeline(), "FAILED") {
		t.Fatalf("timeline text:\n%s", rep.Timeline())
	}
}
