package core

import (
	"fmt"
	"time"

	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/lbone"
	"repro/internal/wire"
)

// Maintain is a first cut at the replication-strategy research the paper
// calls for ("the decision-making of how to replicate, stripe, and route
// files... is work that we will address in the future", §4): a single
// maintenance pass that keeps an exNode retrievable over time by
// refreshing expiring allocations, trimming dead mappings, and re-growing
// redundancy when coverage has decayed below a floor.

// MaintainOptions tune a maintenance pass.
type MaintainOptions struct {
	// MinCoverage is the minimum number of available copies every extent
	// should have; Maintain augments when any extent falls below it
	// (default 2 — the paper's Test 3 floor).
	MinCoverage int
	// RefreshBelow triggers a Refresh when any mapping expires within
	// this window (default 24h).
	RefreshBelow time.Duration
	// RefreshTo is the new lifetime granted by the refresh (default
	// DefaultDuration).
	RefreshTo time.Duration
	// Near places repair replicas (default: the client's location).
	Near *geo.Point
	// Depots bypasses discovery for repair uploads.
	Depots []lbone.DepotInfo
	// Download tunes the repair read path.
	Download DownloadOptions
}

// MaintainReport says what a pass did.
type MaintainReport struct {
	Refreshed     int // allocations whose lifetime was extended
	TrimmedDead   int // mappings dropped because their depot no longer has them
	AddedReplicas int // repair copies uploaded
	MinCoverage   int // worst-extent coverage after the pass
	Events        []MaintainEvent
}

func (r *MaintainReport) event(action, format string, args ...any) {
	r.Events = append(r.Events, MaintainEvent{Action: action, Detail: fmt.Sprintf(format, args...)})
}

// Maintain runs one maintenance pass and returns the (possibly new)
// exNode. The input exNode is not mutated except for refreshed expiration
// timestamps.
func (t *Tools) Maintain(x *exnode.ExNode, opts MaintainOptions) (*exnode.ExNode, *MaintainReport, error) {
	if opts.MinCoverage <= 0 {
		opts.MinCoverage = 2
	}
	if opts.RefreshBelow <= 0 {
		opts.RefreshBelow = 24 * time.Hour
	}
	if opts.RefreshTo <= 0 {
		opts.RefreshTo = DefaultDuration
	}
	rep := &MaintainReport{}

	// 1. Probe every mapping.
	entries := t.List(x)

	// 2. Refresh soon-expiring allocations (across the whole exnode: one
	//    partially-refreshed exnode beats an expired one).
	now := t.clock().Now()
	needsRefresh := false
	for _, e := range entries {
		if e.Available && !e.Expires.IsZero() && e.Expires.Before(now.Add(opts.RefreshBelow)) {
			needsRefresh = true
			break
		}
	}
	if needsRefresh {
		n, err := t.Refresh(x, opts.RefreshTo)
		if err != nil {
			t.logf("core: maintain: refresh: %v", err)
			rep.event("refresh", "extended %d allocations to %v (partial: %v)", n, opts.RefreshTo, err)
		} else {
			rep.event("refresh", "extended %d allocations to %v", n, opts.RefreshTo)
		}
		rep.Refreshed = n
	}

	// 3. Drop mappings whose allocations are gone for good (expired or
	//    deleted). A depot merely being down is NOT grounds for trimming —
	//    the paper's depots came back. Only trim when the depot answered
	//    and said "no such allocation".
	out := x.Clone()
	var deadIdx []int
	for i, e := range entries {
		if e.Available {
			continue
		}
		if gone := t.allocationGone(x.Mappings[i]); gone {
			deadIdx = append(deadIdx, i)
		}
	}
	if len(deadIdx) > 0 {
		for _, i := range deadIdx {
			m := x.Mappings[i]
			rep.event("trim", "mapping [%d,%d) on %s (%s): allocation gone",
				m.Offset, m.Offset+m.Length, m.Depot, m.Manage.Addr)
		}
		trimmed, err := t.Trim(out, TrimOptions{Indices: deadIdx})
		if err != nil {
			return nil, rep, fmt.Errorf("core: maintain: trim: %w", err)
		}
		out = trimmed
		rep.TrimmedDead = len(deadIdx)
	}

	// 4. Measure worst-extent coverage counting only currently-available
	//    mappings, and repair if below the floor.
	coverage := t.worstCoverage(out)
	if coverage < opts.MinCoverage {
		add := opts.MinCoverage - coverage
		rep.event("repair", "coverage %d below floor %d: adding %d replica(s)", coverage, opts.MinCoverage, add)
		aug, err := t.Augment(out, AugmentOptions{
			Replicas: add,
			Near:     opts.Near,
			Depots:   opts.Depots,
			Duration: opts.RefreshTo,
			Checksum: true,
			Download: opts.Download,
		})
		if err != nil {
			return out, rep, fmt.Errorf("core: maintain: repair: %w", err)
		}
		out = aug
		rep.AddedReplicas = add
	}
	rep.MinCoverage = t.worstCoverage(out)
	return out, rep, nil
}

// allocationGone distinguishes "depot down" from "allocation gone": it
// reports true only when the depot is reachable and answers NOT_FOUND or
// EXPIRED for the mapping.
func (t *Tools) allocationGone(m *exnode.Mapping) bool {
	if m.Manage.IsZero() {
		return false
	}
	if t.healthBlocked(m.Manage.Addr) {
		// Open circuit: the depot is (currently) unreachable, which is
		// exactly the "depot down" case we must not trim on. No need to
		// pay the probe to find that out.
		return false
	}
	_, err := t.IBP.Probe(m.Manage)
	if err == nil {
		return false
	}
	return isGoneError(err)
}

// worstCoverage returns the minimum, over extents of the file, of the
// effective redundancy covering the extent: the number of currently-
// available replica mappings, plus what the coding groups contribute. A
// k+m group with a >= k blocks reachable can lose a-k more blocks and
// still rebuild, so it counts as a-k+1 independent copies of the extent
// it protects; an unrecoverable group (a < k) counts nothing. Counting
// only replicas here made every coded-only file report coverage 0, so
// Maintain stacked fresh replicas onto perfectly healthy coding groups
// on every single pass.
func (t *Tools) worstCoverage(x *exnode.ExNode) int {
	avail := map[*exnode.Mapping]bool{}
	for _, m := range x.Mappings {
		if m.Manage.IsZero() {
			// Read-only share: nothing to probe, assume nothing.
			continue
		}
		if t.healthBlocked(m.Manage.Addr) {
			// Open circuit counts as unavailable without paying the probe.
			continue
		}
		if _, err := t.IBP.Probe(m.Manage); err == nil {
			avail[m] = true
		}
	}
	type groupCover struct {
		ext exnode.Extent
		eff int // effective copies the group contributes to its extent
	}
	var groups []groupCover
	for _, ms := range x.CodingGroups() {
		k := ms[0].DataBlocks
		blocks := map[int]bool{}
		for _, m := range ms {
			if avail[m] {
				blocks[m.BlockIndex] = true
			}
		}
		if a := len(blocks); a >= k {
			groups = append(groups, groupCover{
				ext: exnode.Extent{Start: ms[0].Offset, End: ms[0].End()},
				eff: a - k + 1,
			})
		}
	}
	min := -1
	for _, ext := range x.Boundaries(0, x.Size) {
		n := 0
		for _, m := range x.Candidates(ext) {
			if avail[m] {
				n++
			}
		}
		for _, g := range groups {
			if g.ext.Start <= ext.Start && ext.End <= g.ext.End {
				n += g.eff
			}
		}
		if min == -1 || n < min {
			min = n
		}
	}
	if min == -1 {
		return 0
	}
	return min
}

// isGoneError reports whether an IBP error means the allocation is
// permanently gone.
func isGoneError(err error) bool { return wire.IsGone(err) }
