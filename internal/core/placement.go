package core

import (
	"sort"

	"repro/internal/exnode"
	"repro/internal/lbone"
)

// Placement selects the depot-assignment policy for uploads — a first
// concrete instance of the replication-strategy research the paper
// motivates ("the actual best replication strategy... is a matter of
// future research", §2.3).
type Placement int

// Placement policies.
const (
	// PlacementRotate round-robins fragments over the depot list,
	// rotating each replica's start (the default; reproduces the paper's
	// simple stripes).
	PlacementRotate Placement = iota
	// PlacementSiteDiverse additionally pushes copies of the same byte
	// range onto different *sites*, so a whole-site outage (a campus
	// network cut, the common failure in the paper's tests) cannot take
	// out every copy of any extent.
	PlacementSiteDiverse
)

// planJob is one fragment to place.
type planJob struct {
	replica int
	j       int
	ext     exnode.Extent
}

// planPlacements returns, per job, the ordered depot candidates to try.
// For PlacementRotate the order is the classic rotation. For
// PlacementSiteDiverse candidates are ordered by how few already-planned
// copies of the overlapping byte range their site holds, so the first
// choice maximizes site diversity; later candidates degrade gracefully
// and double as failover targets.
func planPlacements(jobs []planJob, depots []lbone.DepotInfo, policy Placement) [][]lbone.DepotInfo {
	out := make([][]lbone.DepotInfo, len(jobs))
	if policy == PlacementRotate || len(depots) == 0 {
		for i, jb := range jobs {
			order := make([]lbone.DepotInfo, len(depots))
			for a := range depots {
				order[a] = depots[(jb.j+jb.replica+a)%len(depots)]
			}
			out[i] = order
		}
		return out
	}

	// Site-diverse: greedy plan. planned[k] records the site chosen for
	// job k (first candidate), so later jobs can count per-site overlap.
	type placed struct {
		ext  exnode.Extent
		site string
	}
	var plan []placed
	overlapCount := func(site string, ext exnode.Extent) int {
		n := 0
		for _, p := range plan {
			if p.site == site && p.ext.Start < ext.End && ext.Start < p.ext.End {
				n++
			}
		}
		return n
	}
	for i, jb := range jobs {
		order := append([]lbone.DepotInfo(nil), depots...)
		// Rotate first for tie-breaking fairness, then stable-sort by
		// overlap so least-loaded sites come first.
		rot := (jb.j + jb.replica) % len(order)
		order = append(order[rot:], order[:rot]...)
		sort.SliceStable(order, func(a, b int) bool {
			return overlapCount(order[a].Site, jb.ext) < overlapCount(order[b].Site, jb.ext)
		})
		out[i] = order
		plan = append(plan, placed{ext: jb.ext, site: order[0].Site})
	}
	return out
}
