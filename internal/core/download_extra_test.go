package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/nws"
)

func TestMaxAttemptsPerExtentBoundsFailover(t *testing.T) {
	e := newEnv(t)
	down := faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(time.Hour), To: envStart.Add(100 * time.Hour)},
	}}
	e.addDepot("A", geo.UTK, down)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(4 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B")})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(2 * time.Hour) // A is now down; static prefers A.
	// With one attempt allowed and coding disabled, the download must
	// fail rather than fall over to B.
	_, rep, err := tl.Download(x, DownloadOptions{
		Strategy:             StrategyStatic,
		MaxAttemptsPerExtent: 1,
		DisableCoding:        true,
	})
	if err == nil {
		t.Fatal("bounded failover should give up")
	}
	if rep.Extents[0].Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", rep.Extents[0].Attempts)
	}
	// Unbounded, it succeeds from B.
	got, _, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("unbounded failover: %v", err)
	}
}

func TestRandomStrategyDeterministicPerSeed(t *testing.T) {
	e := newEnv(t)
	for _, n := range []string{"A", "B", "C", "D"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 4, Depots: e.infosFor("A", "B", "C", "D")})
	if err != nil {
		t.Fatal(err)
	}
	_, rep1, err := tl.Download(x, DownloadOptions{Strategy: StrategyRandom, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := tl.Download(x, DownloadOptions{Strategy: StrategyRandom, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Extents[0].Depot != rep2.Extents[0].Depot {
		t.Fatalf("same seed chose %s then %s", rep1.Extents[0].Depot, rep2.Extents[0].Depot)
	}
}

func TestListShowsBandwidthForecast(t *testing.T) {
	e := newEnv(t)
	d := e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, true)
	data := payload(2 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	tl.NWS.Record("UTK", d.Addr(), nws.Bandwidth, 27.5)
	entries := tl.List(x)
	if entries[0].Bandwidth != 27.5 {
		t.Fatalf("bandwidth = %v, want 27.5", entries[0].Bandwidth)
	}
	out := FormatList(x.Name, x.Size, entries)
	if !bytes.Contains([]byte(out), []byte("27.50")) {
		t.Fatalf("list output missing forecast:\n%s", out)
	}
}

func TestDownloadRecordsNWSFeedback(t *testing.T) {
	e := newEnv(t)
	d := e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, true)
	data := payload(64 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tl.NWS.Forecast("UTK", d.Addr(), nws.Bandwidth); ok {
		t.Fatal("no forecast expected before any download")
	}
	if _, _, err := tl.Download(x, DownloadOptions{}); err != nil {
		t.Fatal(err)
	}
	bw, ok := tl.NWS.Forecast("UTK", d.Addr(), nws.Bandwidth)
	if !ok || bw <= 0 {
		t.Fatalf("download did not feed NWS: %v, %v", bw, ok)
	}
}

func TestEmptyFileDownload(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	x, err := tl.Upload("empty", nil, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || len(rep.Extents) != 0 {
		t.Fatalf("empty download: %d bytes, %d extents", len(got), len(rep.Extents))
	}
}

func TestRemoteNWSWithTools(t *testing.T) {
	// Tools work against a remote NWS daemon exactly like a local service.
	e := newEnv(t)
	d := e.addDepot("A", geo.UTK, nil)
	svc := nws.NewService(e.clk, 64)
	srv, err := nws.ServeNWS("127.0.0.1:0", svc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tl := e.tools(geo.UTK, false)
	tl.NWS = nws.NewRemote(srv.Addr())
	data := payload(16 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tl.Download(x, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download with remote NWS: %v", err)
	}
	// The download fed the remote daemon.
	if _, ok := tl.NWS.Forecast("UTK", d.Addr(), nws.Bandwidth); !ok {
		t.Fatal("remote NWS did not receive download feedback")
	}
}

func TestVerifyAudit(t *testing.T) {
	e := newEnv(t)
	dA := e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(32 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B"), Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	res := tl.Verify(x)
	if !res.Healthy() || res.OK != 2 {
		t.Fatalf("healthy exnode: %s", res)
	}
	// Corrupt depot A: verify must localize the bad copy while B stays ok.
	e.model.SetDepotCorruption(dA.Addr(), true)
	res = tl.Verify(x)
	if res.Corrupt != 1 || res.OK != 1 {
		t.Fatalf("after corruption: %s", res)
	}
	if res.Healthy() {
		t.Fatal("corrupt exnode reported healthy")
	}
	for _, en := range res.Entries {
		if en.Mapping.Depot == "A" && en.State != "corrupt" {
			t.Fatalf("A state = %s", en.State)
		}
		if en.Mapping.Depot == "B" && en.State != "ok" {
			t.Fatalf("B state = %s", en.State)
		}
	}
	// Take B down: its segment reports unavailable.
	now := e.clk.Now()
	e.model.AddDepot(e.depots["B"].Addr(), faultnet.DepotState{
		Site:  "UCSD",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	res = tl.Verify(x)
	if res.Unavailable != 1 {
		t.Fatalf("after outage: %s", res)
	}
	// Without checksums everything is unchecked.
	e.model.SetDepotCorruption(dA.Addr(), false)
	y, err := tl.Upload("g", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	if res := tl.Verify(y); res.Unchecked != 1 {
		t.Fatalf("no-checksum exnode: %s", res)
	}
}

func TestDownloadBudget(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	// Slow remote link so extents take real virtual time.
	e.model.SetLink("HARVARD", "UTK", faultnet.Link{RTT: 50 * time.Millisecond, Mbps: 1})
	tl := e.tools(geo.Harvard, false)
	data := payload(400 << 10) // ~3.3 s at 1 Mbit/s
	x, err := tl.Upload("f", data, UploadOptions{Fragments: 8, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	// A 1-second budget cannot finish 3+ seconds of transfer.
	_, rep, err := tl.Download(x, DownloadOptions{Budget: time.Second})
	if err == nil {
		t.Fatal("budget-bound download should fail")
	}
	budgeted := 0
	for _, er := range rep.Extents {
		if er.Err == ErrBudgetExceeded {
			budgeted++
		}
	}
	if budgeted == 0 {
		t.Fatalf("no extents marked budget-exceeded: %+v", rep.Extents)
	}
	// A generous budget succeeds.
	got, _, err := tl.Download(x, DownloadOptions{Budget: time.Minute})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("generous budget: %v", err)
	}
}

func TestDownloadBudgetParallel(t *testing.T) {
	// The parallel path must enforce Budget too: workers check the
	// deadline before starting each extent and mark skipped ones with
	// ErrBudgetExceeded rather than silently fetching past the budget.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.model.SetLink("HARVARD", "UTK", faultnet.Link{RTT: 50 * time.Millisecond, Mbps: 1})
	tl := e.tools(geo.Harvard, false)
	data := payload(400 << 10) // ~3.3 s at 1 Mbit/s
	x, err := tl.Upload("f", data, UploadOptions{Fragments: 8, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := tl.Download(x, DownloadOptions{Budget: time.Second, Parallelism: 3})
	if err == nil {
		t.Fatal("budget-bound parallel download should fail")
	}
	budgeted := 0
	for _, er := range rep.Extents {
		if er.Err == ErrBudgetExceeded {
			budgeted++
		}
	}
	if budgeted == 0 {
		t.Fatalf("no extents marked budget-exceeded: %+v", rep.Extents)
	}
	got, _, err := tl.Download(x, DownloadOptions{Budget: time.Minute, Parallelism: 3})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("generous budget: %v", err)
	}
}
