package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/exnode"
	"repro/internal/faultnet"
	"repro/internal/geo"
)

func TestUploadRSRoundTrip(t *testing.T) {
	e := newEnv(t)
	for _, n := range []string{"D1", "D2", "D3", "D4", "D5"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(100_003) // deliberately not divisible by k
	x, err := tl.UploadRS("f", data, CodedOptions{DataBlocks: 3, ParityBlocks: 2, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Mappings) != 5 {
		t.Fatalf("mappings = %d, want 5", len(x.Mappings))
	}
	// A coded exnode has no replica mappings; download must go through
	// coded recovery.
	got, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RS download mismatch")
	}
	if !rep.Extents[0].Coded {
		t.Fatal("extent should be marked coded")
	}
}

func TestRSDownloadSurvivesTwoDepotLosses(t *testing.T) {
	e := newEnv(t)
	var names []string
	for _, n := range []string{"D1", "D2", "D3", "D4", "D5"} {
		e.addDepot(n, geo.UTK, nil)
		names = append(names, n)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(50_000)
	x, err := tl.UploadRS("f", data, CodedOptions{
		DataBlocks: 3, ParityBlocks: 2,
		Depots: e.infosFor(names...),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill two of the five depots (one data, one parity block).
	now := e.clk.Now()
	for _, n := range []string{"D1", "D5"} {
		e.model.AddDepot(e.depots[n].Addr(), faultnet.DepotState{
			Site:  "UTK",
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
		})
	}
	got, _, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("RS recovery mismatch after two losses")
	}
	// Kill a third: only 2 of 5 blocks remain < k=3.
	e.model.AddDepot(e.depots["D2"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	if _, _, err := tl.Download(x, DownloadOptions{}); err == nil {
		t.Fatal("download with fewer than k surviving blocks should fail")
	}
}

func TestUploadXORSurvivesOneLoss(t *testing.T) {
	e := newEnv(t)
	for _, n := range []string{"D1", "D2", "D3", "D4"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(30_000)
	x, err := tl.UploadXOR("f", data, CodedOptions{
		DataBlocks: 3,
		Depots:     e.infosFor("D1", "D2", "D3", "D4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Mappings) != 4 { // 3 data + 1 parity
		t.Fatalf("mappings = %d", len(x.Mappings))
	}
	// Storage overhead is 1/k versus 1x for replication.
	var stored int64
	for _, m := range x.Mappings {
		stored += m.BlockSize
	}
	if stored >= 2*int64(len(data)) {
		t.Fatalf("XOR stored %d bytes for %d of data — worse than replication", stored, len(data))
	}
	now := e.clk.Now()
	e.model.AddDepot(e.depots["D2"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	got, _, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("XOR recovery mismatch")
	}
	// Two losses exceed XOR tolerance.
	e.model.AddDepot(e.depots["D3"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	if _, _, err := tl.Download(x, DownloadOptions{}); err == nil {
		t.Fatal("XOR with two losses should fail")
	}
}

func TestCodedXMLRoundTripStillDownloads(t *testing.T) {
	e := newEnv(t)
	for _, n := range []string{"D1", "D2", "D3"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(9999)
	x, err := tl.UploadRS("f", data, CodedOptions{DataBlocks: 2, ParityBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := exnode.Marshal(x)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := exnode.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tl.Download(x2, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after XML round trip: %v", err)
	}
}

func TestHybridReplicaPlusParity(t *testing.T) {
	// An exnode can mix a single replica with a coding group: the replica
	// serves normal reads; the coding group provides recovery when the
	// replica's depot dies.
	e := newEnv(t)
	e.addDepot("R", geo.UTK, nil)
	for _, n := range []string{"C1", "C2", "C3", "C4"} {
		e.addDepot(n, geo.UCSD, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(20_000)
	replica, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("R")})
	if err != nil {
		t.Fatal(err)
	}
	coded, err := tl.UploadRS("f", data, CodedOptions{
		DataBlocks: 3, ParityBlocks: 1,
		Depots: e.infosFor("C1", "C2", "C3", "C4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	hybrid := replica.Clone()
	for _, m := range coded.Mappings {
		mm := *m
		hybrid.Add(&mm)
	}
	if err := hybrid.Validate(); err != nil {
		t.Fatal(err)
	}
	// Normal path: replica serves.
	_, rep, err := tl.Download(hybrid, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extents[0].Coded {
		t.Fatal("replica should serve when available")
	}
	// Replica depot dies: coded recovery takes over.
	now := e.clk.Now()
	e.model.AddDepot(e.depots["R"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	got, rep2, err := tl.Download(hybrid, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hybrid recovery mismatch")
	}
	if !rep2.Extents[0].Coded {
		t.Fatal("recovery should be marked coded")
	}
	// With coding disabled the same download fails.
	if _, _, err := tl.Download(hybrid, DownloadOptions{DisableCoding: true}); err == nil {
		t.Fatal("DisableCoding should forgo recovery")
	}
}
