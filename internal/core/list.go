package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/exnode"
	"repro/internal/nws"
)

// ListEntry describes one segment of an exNode, as printed by the xnd_ls
// tool (paper Figure 7).
type ListEntry struct {
	Index     int
	Mapping   *exnode.Mapping
	Available bool    // probe succeeded now
	Size      int64   // stored bytes (-1 when unavailable)
	Bandwidth float64 // NWS forecast to the segment's depot, Mbit/s (0 = unknown)
	Expires   time.Time
}

// List probes every mapping of the exNode and reports availability, size,
// bandwidth forecast and expiration per segment (paper §2.3 "List: much
// like the Unix ls command").
func (t *Tools) List(x *exnode.ExNode) []ListEntry {
	entries := make([]ListEntry, len(x.Mappings))
	for i, m := range x.Mappings {
		e := ListEntry{Index: i, Mapping: m, Size: -1, Expires: m.Expires}
		if info, err := t.IBP.Probe(m.Manage); err == nil {
			e.Available = true
			e.Size = info.Size
			e.Expires = info.Expires
		} else if data := t.probeByRead(m); data {
			// Read-only exnodes carry no manage cap; a 0-byte read works.
			e.Available = true
			e.Size = m.Length
		}
		if t.NWS != nil {
			if bw, ok := t.NWS.Forecast(t.Site, m.Read.Addr, nws.Bandwidth); ok {
				e.Bandwidth = bw
			}
		}
		entries[i] = e
	}
	return entries
}

// probeByRead tests availability without a manage capability.
func (t *Tools) probeByRead(m *exnode.Mapping) bool {
	if m.Manage.IsZero() {
		_, err := t.IBP.Load(m.Read, 0, 0)
		return err == nil
	}
	return false
}

// Availability summarizes a List result: fraction of segments reachable.
func Availability(entries []ListEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	up := 0
	for _, e := range entries {
		if e.Available {
			up++
		}
	}
	return 100 * float64(up) / float64(len(entries))
}

// FormatList renders entries in the xnd_ls -b style of the paper's
// Figure 7: mode string, index, size (-1 if unavailable), depot, bandwidth
// forecast, expiration.
func FormatList(name string, size int64, entries []ListEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %d\n", name, name, size)
	for _, e := range entries {
		mode := formatMode(e)
		sz := e.Size
		if !e.Available {
			sz = -1
		}
		fmt.Fprintf(&b, "%s %3d %9d %-8s", mode, e.Index, sz, e.Mapping.Depot)
		if e.Available {
			fmt.Fprintf(&b, " %6.2f %s", e.Bandwidth, e.Expires.UTC().Format("Jan 2 15:04:05 2006"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatMode builds the "Srwma"/"?rwm-" flag column: S = segment
// available (? = not), then presence of read/write/manage capabilities,
// then 'a' when alive (has a future expiration).
func formatMode(e ListEntry) string {
	var b [5]byte
	b[0] = 'S'
	if !e.Available {
		b[0] = '?'
	}
	b[1], b[2], b[3] = '-', '-', '-'
	if !e.Mapping.Read.IsZero() {
		b[1] = 'r'
	}
	if !e.Mapping.Write.IsZero() {
		b[2] = 'w'
	}
	if !e.Mapping.Manage.IsZero() {
		b[3] = 'm'
	}
	b[4] = '-'
	if e.Available && !e.Expires.IsZero() {
		b[4] = 'a'
	}
	return string(b[:])
}
