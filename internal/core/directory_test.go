package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/depot"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/registry"
)

// Regression: a dead registry must surface as a *detected* discovery
// failure — fail fast with the taxonomy attached — never as an empty
// depot list that places the upload on zero depots.
func TestUploadDeadRegistryIsDetectedFailure(t *testing.T) {
	tl := &Tools{
		IBP:   ibp.NewClient(),
		LBone: lbone.NewClient("127.0.0.1:1", lbone.WithTimeouts(200*time.Millisecond, time.Second)),
		Loc:   geo.UTK.Loc,
	}
	_, err := tl.Upload("doomed", payload(1024), UploadOptions{})
	if err == nil {
		t.Fatal("upload with dead registry succeeded")
	}
	var de *DiscoveryError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DiscoveryError", err)
	}
	if de.Class != registry.ClassDetected {
		t.Fatalf("class = %v, want detected", de.Class)
	}
	if !errors.Is(err, lbone.ErrNoRegistry) {
		t.Fatalf("err = %v, want ErrNoRegistry in chain", err)
	}
}

// The quorum client is a DepotSource and the directory stores exNodes:
// upload discovers depots through the replica group, publishes the
// exNode by name, and a different client downloads it by name alone.
func TestUploadStoreDownloadByNameThroughQuorum(t *testing.T) {
	// Three registry replicas.
	addrs := make([]string, 3)
	reps := make([]*registry.Replica, 3)
	for i := range addrs {
		srv, rep, err := registry.Serve("127.0.0.1:0", registry.Config{
			Members: []string{"placeholder:0"}, Seq: 1, Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i], reps[i] = srv.Addr(), rep
	}
	view := registry.View{Seq: 2, Members: addrs, Shards: 4}
	for _, rep := range reps {
		if err := rep.Reconfigure(view); err != nil {
			t.Fatal(err)
		}
	}
	qc := registry.NewQuorumClient(addrs[0]+","+addrs[1]+","+addrs[2],
		registry.WithTimeouts(time.Second, 5*time.Second))

	// Two real depots, registered through the quorum.
	for _, name := range []string{"D1", "D2"} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret: []byte("dir-test-" + name), Capacity: 64 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		err = qc.RegisterDepot(lbone.DepotInfo{
			Addr: d.Addr(), Name: name, Site: geo.UTK.Name, Loc: geo.UTK.Loc,
			Capacity: 64 << 20, MaxDuration: 30 * 24 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	tl := &Tools{
		IBP:       ibp.NewClient(),
		LBone:     qc,
		Loc:       geo.UTK.Loc,
		Directory: registry.NewDirectory(qc),
	}
	data := payload(8192)
	x, err := tl.Upload("files/report.dat", data, UploadOptions{Replicas: 2, Fragments: 2})
	if err != nil {
		t.Fatal(err)
	}
	version, err := tl.StoreExNode(x.Name, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("stored version = %d", version)
	}

	// A second client resolves by name alone.
	other := &Tools{IBP: ibp.NewClient(), LBone: qc, Loc: geo.UTK.Loc,
		Directory: registry.NewDirectory(qc)}
	got, _, err := other.DownloadByName("files/report.dat", DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("downloaded bytes differ")
	}

	// Version must thread through update cycles.
	loaded, v, err := other.LoadExNode(x.Name)
	if err != nil || v != 1 {
		t.Fatalf("load = v%d, %v", v, err)
	}
	if _, err := other.StoreExNode(x.Name, loaded, v); err != nil {
		t.Fatal(err)
	}
	if _, err := other.StoreExNode(x.Name, loaded, v); !errors.Is(err, registry.ErrVersionConflict) {
		t.Fatalf("stale store err = %v, want version conflict", err)
	}

	// Without a directory the by-name surface refuses cleanly.
	bare := &Tools{IBP: ibp.NewClient()}
	if _, _, err := bare.LoadExNode("x"); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("bare load err = %v", err)
	}
}
