package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/exnode"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/nws"
)

func TestUploadDownloadRoundTrip(t *testing.T) {
	e := newEnv(t)
	e.addDepot("UTK1", geo.UTK, nil)
	e.addDepot("UTK2", geo.UTK, nil)
	e.addDepot("UCSD1", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)

	data := payload(200 << 10)
	x, err := tl.Upload("file", data, UploadOptions{Replicas: 2, Fragments: 3, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.Replicas() != 2 {
		t.Fatalf("replicas = %d", x.Replicas())
	}
	if len(x.Mappings) != 6 {
		t.Fatalf("mappings = %d, want 6", len(x.Mappings))
	}
	got, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("download mismatch")
	}
	if !rep.OK() || rep.Bytes != int64(len(data)) {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Fatal("report duration should be positive in virtual time")
	}
}

func TestUploadSpreadsReplicasAcrossDepots(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(1000)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Fragments: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two copies of the same extent must not share a depot when two exist.
	if x.Mappings[0].Read.Addr == x.Mappings[1].Read.Addr {
		t.Fatal("replicas landed on the same depot")
	}
}

func TestDownloadRange(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(10_000)
	x, err := tl.Upload("f", data, UploadOptions{Fragments: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tl.DownloadRange(x, 1234, 5678, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[1234:1234+5678]) {
		t.Fatal("range mismatch")
	}
	// Out-of-range requests fail.
	if _, _, err := tl.DownloadRange(x, 9000, 5000, DownloadOptions{}); err == nil {
		t.Fatal("out-of-range download should fail")
	}
}

func TestDownloadFailsOverWhenDepotDown(t *testing.T) {
	e := newEnv(t)
	// Depot A goes down an hour from now; B holds the second copy.
	e.addDepot("A", geo.UTK, faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(time.Hour), To: envStart.Add(3 * time.Hour)},
	}})
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)

	data := payload(64 << 10)
	// Upload while everything is up, then advance into A's outage.
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2,
		Depots:   e.infosFor("B", "A"), // copy 0 on B, copy 1 on A
	})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(90 * time.Minute)
	// Static strategy prefers A (same site as client) — which is down, so
	// the download must fail over to B and still succeed.
	got, rep, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover download mismatch")
	}
	if rep.Failovers == 0 {
		t.Fatal("expected at least one failover")
	}
	if rep.Extents[0].Depot != "B" {
		t.Fatalf("served by %s, want B", rep.Extents[0].Depot)
	}
}

func TestDownloadFailsWhenAllReplicasDown(t *testing.T) {
	e := newEnv(t)
	down := faultnet.Windows{Down: []faultnet.Window{{From: envStart, To: envStart.Add(time.Hour)}}}
	e.addDepot("A", geo.UTK, down)
	e.addDepot("B", geo.UCSD, down)
	tl := e.tools(geo.UTK, false)
	// Upload during a clear window: advance past the outage, upload, then
	// jump back is impossible — instead upload to depots with a later
	// outage.
	e.clk.Advance(2 * time.Hour) // everything back up
	data := payload(1 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B")})
	if err != nil {
		t.Fatal(err)
	}
	// Pull both depots down again with a fresh scripted window.
	now := e.clk.Now()
	e.model.AddDepot(e.depots["A"].Addr(), faultnet.DepotState{Site: "UTK", Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}}})
	e.model.AddDepot(e.depots["B"].Addr(), faultnet.DepotState{Site: "UCSD", Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}}})
	_, rep, err := tl.Download(x, DownloadOptions{})
	if err == nil {
		t.Fatal("download with every replica down should fail")
	}
	if rep == nil || rep.OK() {
		t.Fatal("report should mark the failure")
	}
}

func TestDownloadStrategyNWSPrefersFastDepot(t *testing.T) {
	e := newEnv(t)
	// UCSB link is 10x faster than UCSD link from Harvard.
	e.model.SetLink("HARVARD", "UCSB", faultnet.Link{RTT: 30 * time.Millisecond, Mbps: 50})
	e.model.SetLink("HARVARD", "UCSD", faultnet.Link{RTT: 30 * time.Millisecond, Mbps: 5})
	e.addDepot("SB", geo.UCSB, nil)
	e.addDepot("SD", geo.UCSD, nil)
	tl := e.tools(geo.Harvard, true)

	data := payload(128 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("SD", "SB")})
	if err != nil {
		t.Fatal(err)
	}
	// Seed NWS with probes (uploads already recorded nothing; downloads do).
	// First download may pick either; by the second the feedback loop has
	// bandwidth history for at least one depot. Prime both explicitly.
	for _, name := range []string{"SD", "SB"} {
		addr := e.depots[name].Addr()
		start := e.clk.Now()
		if _, err := tl.IBP.Load(x.MappingsByDepot(name)[0].Read, 0, 1024); err != nil {
			t.Fatalf("prime %s: %v", name, err)
		}
		elapsed := e.clk.Since(start)
		tl.NWS.Record("HARVARD", addr, nws.Bandwidth, float64(1024*8)/1e6/elapsed.Seconds())
	}
	_, rep, err := tl.Download(x, DownloadOptions{Strategy: StrategyNWS})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extents[0].Depot != "SB" {
		t.Fatalf("NWS strategy picked %s, want SB (faster)", rep.Extents[0].Depot)
	}
}

func TestDownloadStrategyStaticPrefersNearDepot(t *testing.T) {
	e := newEnv(t)
	e.addDepot("FAR", geo.UCSB, nil)
	e.addDepot("NEAR", geo.UNC, nil)
	tl := e.tools(geo.UTK, false) // no NWS → auto = static
	data := payload(4 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("FAR", "NEAR")})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extents[0].Depot != "NEAR" {
		t.Fatalf("static strategy picked %s, want NEAR", rep.Extents[0].Depot)
	}
}

func TestChecksumDetectsCorruptionAndFailsOver(t *testing.T) {
	e := newEnv(t)
	dA := e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(32 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B"), Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	// A starts silently corrupting reads. Static strategy prefers A
	// (local), hits the checksum mismatch, and must fail over to B.
	e.model.SetDepotCorruption(dA.Addr(), true)
	got, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corruption slipped through")
	}
	if rep.Extents[0].Depot != "B" {
		t.Fatalf("served by %s, want failover to B", rep.Extents[0].Depot)
	}
	// Without verification the corrupt copy is accepted silently.
	got2, _, err := tl.Download(x, DownloadOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got2, data) {
		t.Fatal("expected corrupted bytes with verification off")
	}
}

func TestStreamingReaderMatchesDownload(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(100_000)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Fragments: 5})
	if err != nil {
		t.Fatal(err)
	}
	r, rep, err := tl.OpenReader(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed bytes mismatch")
	}
	if len(rep.Extents) == 0 || !rep.OK() {
		t.Fatalf("stream report: %+v", rep)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); err != io.ErrClosedPipe {
		t.Fatalf("read after close = %v", err)
	}
}

func TestParallelDownloadMatchesSequential(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	e.addDepot("C", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(300_000)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Fragments: 6})
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := tl.Download(x, DownloadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, rep, err := tl.Download(x, DownloadOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) || !bytes.Equal(par, data) {
		t.Fatal("parallel download mismatch")
	}
	if !rep.OK() {
		t.Fatalf("parallel report: %+v", rep)
	}
}

func TestListAndFormat(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	down := faultnet.Windows{Down: []faultnet.Window{{From: envStart, To: envStart.Add(100 * time.Hour)}}}
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(10 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B")})
	if err != nil {
		t.Fatal(err)
	}
	// Take B down after upload.
	e.model.AddDepot(e.depots["B"].Addr(), faultnet.DepotState{Site: "UCSD", Avail: down})
	entries := tl.List(x)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if !entries[0].Available || entries[1].Available {
		t.Fatalf("availability flags wrong: %+v", entries)
	}
	if got := Availability(entries); got != 50 {
		t.Fatalf("availability = %v, want 50", got)
	}
	out := FormatList(x.Name, x.Size, entries)
	if !strings.Contains(out, "Srwma") || !strings.Contains(out, "?rwm-") {
		t.Fatalf("format:\n%s", out)
	}
	if !strings.Contains(out, "-1") {
		t.Fatalf("unavailable segment should print -1:\n%s", out)
	}
}

func TestRefreshExtendsExpirations(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(1 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	before := x.Mappings[0].Expires
	e.clk.Advance(30 * time.Minute)
	n, err := tl.Refresh(x, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(x.Mappings) {
		t.Fatalf("refreshed %d of %d", n, len(x.Mappings))
	}
	if !x.Mappings[0].Expires.After(before) {
		t.Fatal("expiration did not move forward")
	}
}

func TestTrim(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Trim(x, TrimOptions{}); err == nil {
		t.Fatal("empty trim selection should fail")
	}
	// Trim replica 1 without deleting from IBP: data still downloadable
	// from replica 0, and the byte array still exists on B.
	one := 1
	trimmed, err := tl.Trim(x, TrimOptions{Replica: &one})
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.Replicas() != 1 || len(trimmed.Mappings) != 1 {
		t.Fatalf("trimmed: %d replicas, %d mappings", trimmed.Replicas(), len(trimmed.Mappings))
	}
	if e.depots["B"].AllocationCount() != 1 {
		t.Fatal("trim without DeleteFromIBP should keep the allocation")
	}
	// Original exnode untouched.
	if len(x.Mappings) != 2 {
		t.Fatal("trim mutated the input exnode")
	}
	got, _, err := tl.Download(trimmed, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after trim: %v", err)
	}
	// Trim with deletion frees the allocation.
	zero := 0
	_, err = tl.Trim(x, TrimOptions{Replica: &zero, DeleteFromIBP: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.depots["A"].AllocationCount() != 0 {
		t.Fatal("DeleteFromIBP should free the byte array")
	}
}

func TestTrimExpired(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(1 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 1, Depots: e.infosFor("A"), Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	y, err := tl.Upload("f2", data, UploadOptions{Replicas: 1, Depots: e.infosFor("B"), Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Merge y's mapping into x as a second replica.
	m := *y.Mappings[0]
	m.Replica = 1
	x.Add(&m)
	e.clk.Advance(2 * time.Hour) // first allocation expires
	trimmed, err := tl.Trim(x, TrimOptions{Expired: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Mappings) != 1 || trimmed.Mappings[0].Depot != "B" {
		t.Fatalf("expired trim kept: %+v", trimmed.Mappings)
	}
}

func TestAugmentAddsReplicas(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.Harvard, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(16 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	near := geo.Harvard.Loc
	aug, err := tl.Augment(x, AugmentOptions{Replicas: 1, Near: &near})
	if err != nil {
		t.Fatal(err)
	}
	if aug.Replicas() != 2 {
		t.Fatalf("augmented replicas = %d", aug.Replicas())
	}
	// The new replica is near Harvard.
	var newMapping *exnode.Mapping
	for _, m := range aug.Mappings {
		if m.Replica == 1 {
			newMapping = m
		}
	}
	if newMapping == nil || newMapping.Depot != "B" {
		t.Fatalf("new replica on %+v, want B", newMapping)
	}
	got, _, err := tl.Download(aug, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after augment: %v", err)
	}
}

func TestRouteMovesFile(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.Harvard, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := tl.Route(x, geo.Harvard.Loc, AugmentOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range routed.Mappings {
		if m.Depot == "A" {
			t.Fatal("routed exnode still references the old depot")
		}
	}
	if e.depots["A"].AllocationCount() != 0 {
		t.Fatal("route should delete the old replica from IBP")
	}
	got, _, err := tl.Download(routed, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after route: %v", err)
	}
}

func TestUploadValidation(t *testing.T) {
	e := newEnv(t)
	tl := e.tools(geo.UTK, false)
	tl.LBone = nil
	if _, err := tl.Upload("f", payload(10), UploadOptions{}); err == nil {
		t.Fatal("upload without depots or lbone should fail")
	}
	tl2 := e.tools(geo.UTK, false)
	if _, err := tl2.Upload("f", payload(10), UploadOptions{}); err == nil {
		t.Fatal("upload with empty registry should fail")
	}
}

func TestParallelUploadMatchesSequential(t *testing.T) {
	e := newEnv(t)
	for _, n := range []string{"A", "B", "C"} {
		e.addDepot(n, geo.UTK, nil)
	}
	tl := e.tools(geo.UTK, false)
	data := payload(120_000)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Fragments: 4, Parallelism: 4, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Mappings) != 8 {
		t.Fatalf("mappings = %d", len(x.Mappings))
	}
	// Mapping order is deterministic: replica-major, offset order.
	for i := 1; i < len(x.Mappings); i++ {
		a, b := x.Mappings[i-1], x.Mappings[i]
		if a.Replica > b.Replica || (a.Replica == b.Replica && a.Offset >= b.Offset) {
			t.Fatalf("mapping order broken at %d: %+v then %+v", i, a, b)
		}
	}
	got, _, err := tl.Download(x, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after parallel upload: %v", err)
	}
}
