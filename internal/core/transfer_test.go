package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/transfer"
)

// hedgeEnv builds the slow-depot scenario: the statically-preferred near
// depot is alive but crawling (a delayed depot, not a dead one — the
// failure mode failover alone cannot fix), while a farther replica is fast.
func hedgeEnv(t *testing.T) (*env, *Tools, []byte, int64) {
	t.Helper()
	e := newEnv(t)
	// Hedging races two live transfers; pace wall time against virtual time
	// so the race resolves by simulated speed, not syscall latency.
	e.model.SetWallPacing(faultnet.DefaultWallPacing)
	e.addDepot("near-slow", geo.UNC, nil)
	e.addDepot("far-fast", geo.UCSD, nil)
	// Harvard→UNC: short hop, starved bandwidth. Harvard→UCSD: fast.
	e.model.SetLink(geo.Harvard.Name, geo.UNC.Name, faultnet.Link{RTT: 10 * time.Millisecond, Mbps: 0.1})
	e.model.SetLink(geo.Harvard.Name, geo.UCSD.Name, faultnet.Link{RTT: 10 * time.Millisecond, Mbps: 100})
	tl := e.tools(geo.Harvard, false)
	data := payload(200 << 10)
	x, err := tl.Upload("hedge.dat", data, UploadOptions{
		Replicas: 2, Fragments: 4, Depots: e.infosFor("near-slow", "far-fast"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The upload above crossed the slow link; reset the virtual clock
	// bookkeeping by measuring downloads from here.
	return e, tl, data, x.Size
}

// TestHedgedDownloadBeatsSlowDepot: static ranking prefers the slow near
// depot, so an unhedged download pays its starved bandwidth for every
// extent. With hedging, the backup fires against the fast replica after the
// threshold and wins, bounding each extent near the fast depot's latency.
func TestHedgedDownloadBeatsSlowDepot(t *testing.T) {
	e, tl, data, _ := hedgeEnv(t)
	x, err := tl.Upload("hedge2.dat", data, UploadOptions{
		Replicas: 2, Fragments: 4, Depots: e.infosFor("near-slow", "far-fast"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: no engine, plain sequential failover.
	_, slowRep, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}

	// Hedged: backup launches 150ms (virtual) into a slow attempt.
	tl.Transfer = transfer.New(transfer.Config{
		Hedge:      true,
		HedgeAfter: 150 * time.Millisecond,
		Clock:      e.clk,
	})
	got, fastRep, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hedged download corrupted")
	}
	c := tl.Transfer.Counters()
	if c.HedgesLaunched == 0 || c.HedgeWins == 0 {
		t.Fatalf("no hedges fired against the slow depot: %+v", c)
	}
	if c.HedgesCancelled == 0 {
		t.Fatalf("the slow loser was never cancelled: %+v", c)
	}
	// Each extent is ~50 KiB: ~4s virtual through the 0.1 Mbps depot,
	// ~150ms+ε hedged. Require at least a 2x improvement end to end.
	if fastRep.Duration*2 > slowRep.Duration {
		t.Fatalf("hedged %v vs unhedged %v: want >= 2x improvement", fastRep.Duration, slowRep.Duration)
	}
	// The winning attempts are marked hedged in the trail.
	sawHedged := false
	for _, er := range fastRep.Extents {
		for _, a := range er.Trail {
			if a.Hedged && a.OK() {
				sawHedged = true
			}
		}
	}
	if !sawHedged {
		t.Fatal("no successful hedged attempt recorded in any trail")
	}
}

// TestHedgedStreamBeatsSlowDepot: the streaming reader rides the same
// engine through fetchExtent.
func TestHedgedStreamBeatsSlowDepot(t *testing.T) {
	e, tl, data, _ := hedgeEnv(t)
	x, err := tl.Upload("hedge3.dat", data, UploadOptions{
		Replicas: 2, Fragments: 4, Depots: e.infosFor("near-slow", "far-fast"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tl.Transfer = transfer.New(transfer.Config{
		Hedge:      true,
		HedgeAfter: 150 * time.Millisecond,
		Clock:      e.clk,
	})
	r, rep, err := tl.OpenReader(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var sb bytes.Buffer
	if _, err := sb.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), data) {
		t.Fatal("hedged stream corrupted")
	}
	if c := tl.Transfer.Counters(); c.HedgesLaunched == 0 {
		t.Fatalf("stream never hedged: %+v", c)
	}
	if !rep.OK() {
		t.Fatalf("report: %+v", rep)
	}
}

// TestConcurrentCodedDownloadsShareDecode is the -race hammer for the
// semaphore plus singleflight: many goroutines download a Reed-Solomon-only
// file (every extent must be rebuilt from the coding group) through one
// shared engine and client.
func TestConcurrentCodedDownloadsShareDecode(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	e.addDepot("C", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	tl.Transfer = transfer.New(transfer.Config{MaxPerDepot: 2, Clock: e.clk})
	data := payload(96 << 10)
	x, err := tl.UploadRS("rs.dat", data, CodedOptions{
		DataBlocks: 2, ParityBlocks: 1, Depots: e.infosFor("A", "B", "C"),
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := tl.Download(x, DownloadOptions{})
			if err == nil && !bytes.Equal(got, data) {
				err = errMismatch
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	c := tl.Transfer.Counters()
	if c.SingleflightLeaders == 0 {
		t.Fatalf("no decode ran through the singleflight: %+v", c)
	}
	if c.SingleflightLeaders+c.SingleflightShared < workers {
		t.Fatalf("decode calls %d < %d workers", c.SingleflightLeaders+c.SingleflightShared, workers)
	}
}

var errMismatch = errBytes{}

type errBytes struct{}

func (errBytes) Error() string { return "downloaded bytes mismatch" }

// TestParallelDownloadRespectsDepotLimit: a wide parallel download through
// the engine may never hold more concurrent slots against one depot than
// configured. Exercised under -race by the tier-1 race target.
func TestParallelDownloadRespectsDepotLimit(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	tl.Transfer = transfer.New(transfer.Config{MaxPerDepot: 2, Clock: e.clk})
	data := payload(256 << 10)
	x, err := tl.Upload("lim.dat", data, UploadOptions{Fragments: 16, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := tl.Download(x, DownloadOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("limited download corrupted")
	}
	if !rep.OK() {
		t.Fatalf("report: %+v", rep)
	}
	c := tl.Transfer.Counters()
	if c.LimitAcquires < 16 {
		t.Fatalf("LimitAcquires = %d, want >= 16", c.LimitAcquires)
	}
	if c.LimitWaits == 0 {
		t.Fatal("8 workers through 2 slots on one depot should have waited")
	}
}
