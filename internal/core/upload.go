package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/integrity"
	"repro/internal/lbone"
	"repro/internal/sealing"
)

// UploadOptions parameterize Upload (paper §2.3: "This upload may be
// parameterized in a variety of ways").
type UploadOptions struct {
	// Replicas is the number of full copies to store (default 1).
	Replicas int
	// Fragments is the number of pieces each replica is striped into
	// (default 1). FragmentsPerReplica overrides it per copy.
	Fragments           int
	FragmentsPerReplica []int
	// Duration is the allocation lifetime (default DefaultDuration).
	Duration time.Duration
	// Reliability requested from depots (default Hard).
	Reliability ibp.Reliability
	// Near orders depot choice by proximity to this point (default: the
	// client's own location).
	Near *geo.Point
	// Depots, when non-nil, bypasses L-Bone discovery and places
	// fragments round-robin on exactly these depots.
	Depots []lbone.DepotInfo
	// Checksum records a SHA-256 digest per fragment for end-to-end
	// verification on download. With encryption, digests cover the
	// ciphertext, so integrity is checkable without the key.
	Checksum bool
	// EncryptionKey, when set (32 bytes), seals the file with AES-256-CTR
	// before upload: depots only ever store ciphertext (paper §4 future
	// work). Downloads then require DownloadOptions.DecryptionKey.
	EncryptionKey []byte
	// Parallelism uploads fragments concurrently (0 or 1 = sequential,
	// the paper's model; >1 = the upload-side counterpart of threaded
	// downloads).
	Parallelism int
	// Placement selects the depot-assignment policy (default
	// PlacementRotate; PlacementSiteDiverse spreads copies of each byte
	// range across sites).
	Placement Placement
	// Report, when non-nil, is filled with the per-fragment placement
	// timeline (every depot tried, failures included) — the upload-side
	// counterpart of the download Report. It is written even when Upload
	// fails, so callers can see how far the upload got.
	Report *UploadReport
}

// ErrUploadAborted marks fragments that were never attempted because a
// sibling fragment already failed: the first real error aborts the upload
// and is what Upload returns.
var ErrUploadAborted = errors.New("core: upload aborted after sibling fragment failed")

func (o *UploadOptions) fragmentsFor(replica int) int {
	if o.FragmentsPerReplica != nil && replica < len(o.FragmentsPerReplica) {
		if n := o.FragmentsPerReplica[replica]; n > 0 {
			return n
		}
	}
	if o.Fragments > 0 {
		return o.Fragments
	}
	return 1
}

// Upload stores data into the network and returns an exNode describing it.
// Fragments are placed round-robin over the chosen depots, with each
// replica's placement rotated so copies of the same extent land on
// different depots when enough exist.
func (t *Tools) Upload(name string, data []byte, opts UploadOptions) (*exnode.ExNode, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = DefaultDuration
	}
	if opts.Reliability == "" {
		opts.Reliability = ibp.Hard
	}
	depots := opts.Depots
	if depots == nil {
		if t.LBone == nil {
			return nil, errors.New("core: upload needs explicit depots or an L-Bone")
		}
		near := opts.Near
		if near == nil {
			near = &t.Loc
		}
		var err error
		depots, err = t.LBone.Query(lbone.Requirements{
			MinDuration: opts.Duration,
			Near:        near,
		})
		if err != nil {
			return nil, discoveryErr("depot discovery", err)
		}
	}
	if len(depots) == 0 {
		return nil, errors.New("core: no depots available for upload")
	}

	x := exnode.New(name, int64(len(data)))
	x.Created = t.clock().Now()
	data, err := t.sealIfRequested(x, data, opts.EncryptionKey)
	if err != nil {
		return nil, err
	}
	// Build the fragment job list, then place each fragment — rotating
	// each replica's starting depot so copies of the same extent land on
	// different depots whenever enough exist, and failing over to the next
	// depot when one refuses or is down.
	var jobs []planJob
	for r := 0; r < opts.Replicas; r++ {
		for j, ext := range splitUniform(int64(len(data)), opts.fragmentsFor(r)) {
			jobs = append(jobs, planJob{r, j, ext})
		}
	}
	candidates := planPlacements(jobs, depots, opts.Placement)
	rep := opts.Report
	if rep == nil {
		rep = &UploadReport{}
	}
	t0 := t.clock().Now()
	rep.Fragments = make([]FragmentReport, len(jobs))
	for i, jb := range jobs {
		rep.Fragments[i] = FragmentReport{Replica: jb.replica, Start: jb.ext.Start, End: jb.ext.End}
	}

	// First-error abort: once any fragment exhausts its candidates, siblings
	// stop starting new placement attempts — there is no point filling
	// depots with fragments of an upload that cannot complete.
	abort := make(chan struct{})
	var abortOnce sync.Once
	aborted := func() bool {
		select {
		case <-abort:
			return true
		default:
			return false
		}
	}
	results := make([]*exnode.Mapping, len(jobs))
	errs := make([]error, len(jobs))
	place := func(i int) (*exnode.Mapping, error) {
		jb := jobs[i]
		fr := &rep.Fragments[i]
		var lastErr error
		for _, depot := range t.preferHealthy(candidates[i]) {
			if aborted() {
				if lastErr == nil {
					lastErr = ErrUploadAborted
				}
				return nil, lastErr
			}
			a0 := t.clock().Now()
			m, err := t.uploadFragment(name, data, jb.ext, depot, jb.replica, opts)
			a := Attempt{Depot: depot.Name, Addr: depot.Addr, Start: a0, Duration: t.clock().Since(a0)}
			if err == nil {
				a.Bytes = jb.ext.Len()
				fr.Trail = append(fr.Trail, a)
				fr.Depot = depot.Name
				fr.Addr = depot.Addr
				return m, nil
			}
			a.Err = err.Error()
			fr.Trail = append(fr.Trail, a)
			lastErr = err
			t.logf("core: upload %q fragment [%d,%d): %v; trying next depot",
				name, jb.ext.Start, jb.ext.End, err)
		}
		if lastErr == nil {
			lastErr = errors.New("core: no candidate depots for fragment")
		}
		return nil, lastErr
	}
	run := func(i int) {
		if aborted() {
			errs[i] = ErrUploadAborted
			return
		}
		results[i], errs[i] = place(i)
		if errs[i] != nil && !errors.Is(errs[i], ErrUploadAborted) {
			abortOnce.Do(func() { close(abort) })
		}
	}
	if opts.Parallelism <= 1 {
		for i := range jobs {
			run(i)
		}
	} else {
		idx := make(chan int)
		done := make(chan struct{})
		for w := 0; w < opts.Parallelism; w++ {
			go func() {
				for i := range idx {
					run(i)
				}
				done <- struct{}{}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		for w := 0; w < opts.Parallelism; w++ {
			<-done
		}
	}

	var firstErr error
	for i, err := range errs {
		rep.Fragments[i].Err = err
		if err != nil && firstErr == nil && !errors.Is(err, ErrUploadAborted) {
			firstErr = err
		}
		if err != nil {
			if errors.Is(err, ErrUploadAborted) && len(rep.Fragments[i].Trail) == 0 {
				rep.Aborted++
			} else {
				rep.Failovers += len(rep.Fragments[i].Trail)
			}
		} else {
			rep.Failovers += len(rep.Fragments[i].Trail) - 1
		}
	}
	if firstErr == nil {
		// All placement errors were abort markers — should not happen, but
		// never return nil with a failed upload.
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		// The upload failed: reclaim every allocation that did succeed so
		// depots are not left holding fragments nothing references.
		for _, m := range results {
			if m == nil {
				continue
			}
			if _, err := t.IBP.Delete(m.Manage); err != nil {
				t.logf("core: upload %q: cleanup of %s: %v", name, m.Manage.Addr, err)
			} else {
				rep.Cleaned++
			}
		}
		rep.Duration = t.clock().Since(t0)
		rep.Bytes = int64(len(data))
		return nil, firstErr
	}
	for i := range jobs {
		x.Add(results[i])
	}
	rep.Duration = t.clock().Since(t0)
	rep.Bytes = int64(len(data))
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}

// uploadFragment stores one extent of data on one depot and returns its
// mapping. The allocate and store run as one pipelined BATCH round trip
// (falling back to sequential verbs against depots that predate BATCH).
func (t *Tools) uploadFragment(name string, data []byte, ext exnode.Extent, depot lbone.DepotInfo, replica int, opts UploadOptions) (*exnode.Mapping, error) {
	payload := data[ext.Start:ext.End]
	set, err := t.IBP.AllocateStore(depot.Addr, ext.Len(), opts.Duration, opts.Reliability, payload)
	if err != nil {
		if !set.Manage.IsZero() {
			// The allocation succeeded but the store did not: best-effort
			// cleanup of the stranded byte array.
			t.IBP.Delete(set.Manage)
		}
		return nil, fmt.Errorf("core: upload %q fragment [%d,%d) on %s: %w",
			name, ext.Start, ext.End, depot.Name, err)
	}
	m := &exnode.Mapping{
		Offset:  ext.Start,
		Length:  ext.Len(),
		Read:    set.Read,
		Write:   set.Write,
		Manage:  set.Manage,
		Replica: replica,
		Depot:   depot.Name,
		Expires: t.clock().Now().Add(opts.Duration),
	}
	if opts.Checksum {
		m.Checksum = integrity.Sum(payload)
	}
	return m, nil
}

// sealIfRequested encrypts data for upload when a key is given, recording
// the cipher metadata on the exNode. It returns the bytes to store.
func (t *Tools) sealIfRequested(x *exnode.ExNode, data, key []byte) ([]byte, error) {
	if key == nil {
		return data, nil
	}
	iv, err := sealing.NewIV()
	if err != nil {
		return nil, err
	}
	sealed, err := sealing.Seal(key, iv, data)
	if err != nil {
		return nil, fmt.Errorf("core: sealing %q: %w", x.Name, err)
	}
	x.Cipher = sealing.CipherAES256CTR
	x.IV = sealing.EncodeIV(iv)
	return sealed, nil
}

// splitUniform divides [0,size) into n near-equal extents.
func splitUniform(size int64, n int) []exnode.Extent {
	if n <= 0 {
		n = 1
	}
	if int64(n) > size && size > 0 {
		n = int(size)
	}
	out := make([]exnode.Extent, 0, n)
	var start int64
	for i := 0; i < n; i++ {
		end := size * int64(i+1) / int64(n)
		if end > start {
			out = append(out, exnode.Extent{Start: start, End: end})
		}
		start = end
	}
	return out
}

// FragmentSpec places one fragment of one replica explicitly — the
// experiment harness uses layouts to reconstruct the paper's Figures 5, 8
// and 15 exactly.
type FragmentSpec struct {
	Depot  lbone.DepotInfo
	Offset int64
	Length int64
}

// Layout is a full explicit placement: one fragment list per replica.
type Layout [][]FragmentSpec

// UploadLayout stores data according to an explicit layout.
func (t *Tools) UploadLayout(name string, data []byte, layout Layout, opts UploadOptions) (*exnode.ExNode, error) {
	if opts.Duration <= 0 {
		opts.Duration = DefaultDuration
	}
	if opts.Reliability == "" {
		opts.Reliability = ibp.Hard
	}
	x := exnode.New(name, int64(len(data)))
	x.Created = t.clock().Now()
	data, err := t.sealIfRequested(x, data, opts.EncryptionKey)
	if err != nil {
		return nil, err
	}
	for r, frags := range layout {
		for _, f := range frags {
			ext := exnode.Extent{Start: f.Offset, End: f.Offset + f.Length}
			if ext.Start < 0 || ext.End > int64(len(data)) || ext.Len() <= 0 {
				return nil, fmt.Errorf("core: layout fragment [%d,%d) outside data of %d bytes",
					ext.Start, ext.End, len(data))
			}
			m, err := t.uploadFragment(name, data, ext, f.Depot, r, opts)
			if err != nil {
				return nil, err
			}
			x.Add(m)
		}
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}
