package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/geo"
)

// TestAugmentReleasesDownloadBuffer is the allocation regression for the
// repair read path, in the spirit of TestStreamReaderPooledAllocs: Augment
// downloads the current contents into a pool-backed buffer and must return
// it once the repair upload no longer needs it. The old code dropped the
// buffer on the floor, so every repair pass drained the pool by one
// file-sized buffer and steady-state repair allocated a fresh multi-MiB
// buffer per pass.
//
// The accounting: one augment+trim cycle moves the file once through the
// depot's backend (one ~fileSize append per store — unavoidable, identical
// either way). With the buffer returned, the client's download Get and the
// depot's wire buffers all recycle, so a cycle costs ~1x fileSize of fresh
// allocation. With the leak, the pool loses a file-class buffer per cycle
// and has to re-make it, pushing the steady-state cost toward 2x. The
// threshold sits midway.
func TestAugmentReleasesDownloadBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("byte-level allocation accounting is skewed by race-detector instrumentation")
	}
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)

	const fileSize = 2 << 20
	data := payload(fileSize)
	x, err := tl.Upload("allocs.dat", data, UploadOptions{
		Depots: e.infosFor("A"), Duration: 48 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One repair cycle: add a replica on B, then drop it again so every
	// cycle starts from the same single-replica state.
	cycle := func() {
		aug, err := tl.Augment(x, AugmentOptions{
			Replicas: 1, Depots: e.infosFor("B"), Duration: 48 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := 1
		if _, err := tl.Trim(aug, TrimOptions{Replica: &r, DeleteFromIBP: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up primes the buffer pool and both connection pools.
	cycle()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 6
	for i := 0; i < runs; i++ {
		cycle()
	}
	runtime.ReadMemStats(&after)
	perCycle := (after.TotalAlloc - before.TotalAlloc) / runs
	if perCycle > fileSize*3/2 {
		t.Fatalf("augment cycle allocates %d bytes (want <= %d): the download buffer is not returning to the pool",
			perCycle, fileSize*3/2)
	}
}
