package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

// TestDownloadRandomLayoutsProperty uploads files with randomized explicit
// layouts (random replica counts, random fragment boundaries) and checks
// that Download reassembles the exact bytes, whole-file and for random
// ranges. This is the core invariant of the entire stack.
func TestDownloadRandomLayoutsProperty(t *testing.T) {
	e := newEnv(t)
	var names []string
	for _, n := range []string{"D1", "D2", "D3", "D4"} {
		e.addDepot(n, geo.UTK, nil)
		names = append(names, n)
	}
	tl := e.tools(geo.UTK, false)

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(rng.Intn(60_000) + 1)
		data := make([]byte, size)
		rng.Read(data)

		// Build a random layout: 1-3 replicas, each split at random
		// boundaries into 1-6 fragments on random depots.
		var layout Layout
		replicas := rng.Intn(3) + 1
		for r := 0; r < replicas; r++ {
			nFrags := rng.Intn(6) + 1
			cuts := map[int64]bool{0: true, size: true}
			for len(cuts) < nFrags+1 {
				cuts[int64(rng.Intn(int(size)))] = true
			}
			points := make([]int64, 0, len(cuts))
			for p := range cuts {
				points = append(points, p)
			}
			sortInt64s(points)
			var frags []FragmentSpec
			for i := 0; i+1 < len(points); i++ {
				if points[i+1] == points[i] {
					continue
				}
				frags = append(frags, FragmentSpec{
					Depot:  e.infos[names[rng.Intn(len(names))]],
					Offset: points[i],
					Length: points[i+1] - points[i],
				})
			}
			layout = append(layout, frags)
		}
		x, err := tl.UploadLayout("prop", data, layout, UploadOptions{Checksum: true})
		if err != nil {
			t.Logf("seed %d: upload: %v", seed, err)
			return false
		}
		got, _, err := tl.Download(x, DownloadOptions{})
		if err != nil || !bytes.Equal(got, data) {
			t.Logf("seed %d: whole download: %v", seed, err)
			return false
		}
		// Three random ranges.
		for i := 0; i < 3; i++ {
			off := int64(rng.Intn(int(size)))
			n := int64(rng.Intn(int(size-off))) + 1
			if off+n > size {
				n = size - off
			}
			part, _, err := tl.DownloadRange(x, off, n, DownloadOptions{})
			if err != nil || !bytes.Equal(part, data[off:off+n]) {
				t.Logf("seed %d: range [%d,%d): %v", seed, off, off+n, err)
				return false
			}
		}
		// Cleanup so depots don't fill across iterations.
		for _, m := range x.Mappings {
			tl.IBP.Delete(m.Manage)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
