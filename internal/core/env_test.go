package core

import (
	"testing"
	"time"

	"repro/internal/depot"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/nws"
	"repro/internal/vclock"
)

// env is a complete in-process testbed: real depots behind the simulated
// WAN, an in-process L-Bone registry, a virtual clock.
type env struct {
	t      *testing.T
	clk    *vclock.Virtual
	model  *faultnet.Model
	reg    *lbone.Registry
	depots map[string]*depot.Depot // name -> daemon
	infos  map[string]lbone.DepotInfo
}

var envStart = time.Date(2002, 1, 11, 15, 0, 0, 0, time.UTC)

func newEnv(t *testing.T) *env {
	t.Helper()
	clk := vclock.NewVirtual(envStart)
	e := &env{
		t:      t,
		clk:    clk,
		model:  faultnet.NewModel(clk, 1),
		reg:    lbone.NewRegistry(0, clk.Now),
		depots: map[string]*depot.Depot{},
		infos:  map[string]lbone.DepotInfo{},
	}
	// Generous default WAN and fast local links.
	e.model.SetDefaultLink(faultnet.Link{RTT: 40 * time.Millisecond, Mbps: 20})
	e.model.SetLocalLink(faultnet.Link{RTT: time.Millisecond, Mbps: 100})
	return e
}

// addDepot starts a depot daemon at the named site.
func (e *env) addDepot(name string, site geo.Site, avail faultnet.Availability) *depot.Depot {
	e.t.Helper()
	return e.addDepotCap(name, site, avail, 256<<20)
}

// addDepotCap is addDepot with an explicit capacity, for tests that need a
// depot small enough to refuse allocations.
func (e *env) addDepotCap(name string, site geo.Site, avail faultnet.Availability, capacity int64) *depot.Depot {
	e.t.Helper()
	d, err := depot.Serve("127.0.0.1:0", depot.Config{
		Secret:   []byte("core-test-" + name),
		Capacity: capacity,
		Clock:    e.clk,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { d.Close() })
	e.model.AddDepot(d.Addr(), faultnet.DepotState{Site: site.Name, Avail: avail})
	info := lbone.DepotInfo{
		Addr:        d.Addr(),
		Name:        name,
		Site:        site.Name,
		Loc:         site.Loc,
		Capacity:    capacity,
		MaxDuration: 30 * 24 * time.Hour,
	}
	e.reg.Register(info)
	e.depots[name] = d
	e.infos[name] = info
	return d
}

// tools builds a Tools client at the given site, optionally with NWS.
func (e *env) tools(site geo.Site, withNWS bool) *Tools {
	e.t.Helper()
	client := ibp.NewClient(
		ibp.WithDialer(e.model.DialerFrom(site.Name)),
		ibp.WithClock(e.clk),
		ibp.WithDialTimeout(2*time.Second),
		ibp.WithOpTimeout(60*time.Second),
	)
	tl := &Tools{
		IBP:   client,
		LBone: RegistrySource{Reg: e.reg},
		Clock: e.clk,
		Site:  site.Name,
		Loc:   site.Loc,
	}
	if withNWS {
		tl.NWS = nws.NewService(e.clk, 128)
	}
	return tl
}

// infosFor returns DepotInfo entries for the named depots, in order.
func (e *env) infosFor(names ...string) []lbone.DepotInfo {
	out := make([]lbone.DepotInfo, len(names))
	for i, n := range names {
		info, ok := e.infos[n]
		if !ok {
			e.t.Fatalf("unknown depot %s", n)
		}
		out[i] = info
	}
	return out
}

// payload builds deterministic test data.
func payload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*131 + i>>8)
	}
	return out
}
