package core

import (
	"fmt"
	"strings"
	"time"
)

// Attempt is one depot interaction in a transfer timeline: which depot was
// tried, when, for how long, and how it ended. Failed attempts stay in the
// trail — the whole point is seeing the failovers, not just the winner.
type Attempt struct {
	Depot    string        // depot display name ("" when unknown)
	Addr     string        // depot address ("" for coded recovery)
	Start    time.Time     // when the attempt began
	Duration time.Duration // how long it took to succeed or fail
	Bytes    int64         // payload bytes moved (0 on failure)
	Coded    bool          // served via parity/RS recovery, not a replica
	Hedged   bool          // launched as the backup side of a hedged read
	Err      string        // "" on success
}

// OK reports whether the attempt succeeded.
func (a Attempt) OK() bool { return a.Err == "" }

// String renders one timeline line, e.g.
//
//	UTK1 (127.0.0.1:6714): ok, 1048576 B in 12ms
//	UCSD1 (127.0.0.1:6715): FAILED after 3s: dial tcp: connection refused
func (a Attempt) String() string {
	who := a.Depot
	if who == "" {
		who = "?"
	}
	if a.Addr != "" {
		who += " (" + a.Addr + ")"
	}
	if a.Coded {
		who += " [coded]"
	}
	if a.Hedged {
		who += " [hedged]"
	}
	if a.OK() {
		return fmt.Sprintf("%s: ok, %d B in %s", who, a.Bytes, a.Duration)
	}
	return fmt.Sprintf("%s: FAILED after %s: %s", who, a.Duration, a.Err)
}

// FragmentReport records how one fragment of an upload was placed,
// including every depot tried along the way.
type FragmentReport struct {
	Replica    int
	Start, End int64
	Depot      string // depot that took it ("" on failure)
	Addr       string
	Trail      []Attempt // every placement attempt, failures included
	Err        error     // non-nil when the fragment could not be placed
}

// UploadReport summarizes an upload for the harness and for `xnd --trace`.
type UploadReport struct {
	Fragments []FragmentReport
	Duration  time.Duration
	Bytes     int64
	Failovers int // failed placement attempts across all fragments
	Aborted   int // fragments never attempted because a sibling failed
	Cleaned   int // stranded allocations deleted after an aborted upload
}

// OK reports whether every fragment was placed.
func (r *UploadReport) OK() bool {
	for _, f := range r.Fragments {
		if f.Err != nil {
			return false
		}
	}
	return true
}

// Timeline renders the per-fragment attempt trails, one indented block per
// fragment.
func (r *UploadReport) Timeline() string {
	var sb strings.Builder
	for _, f := range r.Fragments {
		fmt.Fprintf(&sb, "replica %d fragment [%d,%d):\n", f.Replica, f.Start, f.End)
		writeTrail(&sb, f.Trail, f.Err)
	}
	return sb.String()
}

// Timeline renders the per-extent attempt trails of a download report.
func (r *Report) Timeline() string {
	var sb strings.Builder
	for _, e := range r.Extents {
		fmt.Fprintf(&sb, "extent [%d,%d):\n", e.Start, e.End)
		writeTrail(&sb, e.Trail, e.Err)
	}
	return sb.String()
}

func writeTrail(sb *strings.Builder, trail []Attempt, err error) {
	if len(trail) == 0 {
		if err != nil {
			fmt.Fprintf(sb, "  (not attempted): %v\n", err)
		}
		return
	}
	for _, a := range trail {
		fmt.Fprintf(sb, "  %s\n", a.String())
	}
}

// MaintainEvent is one action taken by a maintenance pass.
type MaintainEvent struct {
	Action string // "refresh", "trim", "repair"
	Detail string
}

func (e MaintainEvent) String() string { return e.Action + ": " + e.Detail }
