package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/sealing"
)

func TestEncryptedUploadDownload(t *testing.T) {
	e := newEnv(t)
	dA := e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	key := sealing.DeriveKey("test passphrase")
	data := payload(64 << 10)
	x, err := tl.Upload("secret", data, UploadOptions{
		Replicas: 2, Fragments: 2, Checksum: true, EncryptionKey: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Encrypted() || x.Cipher != sealing.CipherAES256CTR || x.IV == "" {
		t.Fatalf("cipher metadata missing: %+v", x)
	}

	// Depots only hold ciphertext: read a fragment directly via IBP.
	m := x.Mappings[0]
	raw, err := tl.IBP.Load(m.Read, 0, m.Length)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, data[:64]) {
		t.Fatal("plaintext visible on the depot")
	}
	_ = dA

	// Download with the key round-trips.
	got, _, err := tl.Download(x, DownloadOptions{DecryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decrypted download mismatch")
	}

	// Without the key the download refuses.
	if _, _, err := tl.Download(x, DownloadOptions{}); !errors.Is(err, ErrEncrypted) {
		t.Fatalf("keyless download = %v, want ErrEncrypted", err)
	}

	// Raw mode returns ciphertext.
	raw2, _, err := tl.Download(x, DownloadOptions{Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw2, data) {
		t.Fatal("raw download returned plaintext")
	}

	// Wrong key yields garbage, not an error (CTR has no authentication;
	// integrity comes from the ciphertext checksums).
	bad, _, err := tl.Download(x, DownloadOptions{DecryptionKey: sealing.DeriveKey("wrong")})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bad, data) {
		t.Fatal("wrong key decrypted correctly?!")
	}
}

func TestEncryptedRangeDownload(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	key := sealing.DeriveKey("range-key")
	data := payload(50_000)
	x, err := tl.Upload("secret", data, UploadOptions{Fragments: 4, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	// Range downloads decrypt at arbitrary (non-block-aligned) offsets.
	for _, c := range []struct{ off, n int64 }{{0, 100}, {17, 33}, {12_345, 7_891}, {49_999, 1}} {
		got, _, err := tl.DownloadRange(x, c.off, c.n, DownloadOptions{DecryptionKey: key})
		if err != nil {
			t.Fatalf("range [%d,%d): %v", c.off, c.off+c.n, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("range [%d,%d) mismatch", c.off, c.off+c.n)
		}
	}
}

func TestEncryptedStreaming(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	key := sealing.DeriveKey("stream-key")
	data := payload(80_000)
	x, err := tl.Upload("secret", data, UploadOptions{Replicas: 2, Fragments: 3, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := tl.OpenReader(x, DownloadOptions{DecryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed decryption mismatch")
	}
}

func TestEncryptedAugmentWithoutKey(t *testing.T) {
	// Augment replicates sealed bytes without ever holding the key — the
	// point of encrypting before upload.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.Harvard, nil)
	tl := e.tools(geo.UTK, false)
	key := sealing.DeriveKey("augment-key")
	data := payload(32 << 10)
	x, err := tl.Upload("secret", data, UploadOptions{Depots: e.infosFor("A"), EncryptionKey: key, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	near := geo.Harvard.Loc
	aug, err := tl.Augment(x, AugmentOptions{Replicas: 1, Near: &near, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	if !aug.Encrypted() || aug.IV != x.IV {
		t.Fatal("augmented exnode lost cipher metadata")
	}
	if aug.Replicas() != 2 {
		t.Fatalf("replicas = %d", aug.Replicas())
	}
	// The new replica decrypts with the original key.
	got, _, err := tl.Download(aug, DownloadOptions{DecryptionKey: key})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after keyless augment: %v", err)
	}
	// And the XML round trip preserves cipher metadata.
	blob, err := exnode.Marshal(aug)
	if err != nil {
		t.Fatal(err)
	}
	back, err := exnode.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cipher != aug.Cipher || back.IV != aug.IV {
		t.Fatal("cipher metadata lost in XML")
	}
}
