package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bufpool"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/integrity"
	"repro/internal/nws"
	"repro/internal/obs"
	"repro/internal/sealing"
)

// Strategy selects how download candidates are ordered (paper §2.3).
type Strategy int

// Download strategies.
const (
	// StrategyAuto uses NWS forecasts when an NWS service is configured,
	// otherwise static proximity — exactly the paper's described
	// behaviour.
	StrategyAuto Strategy = iota
	// StrategyNWS ranks candidates by forecast bandwidth, highest first.
	StrategyNWS
	// StrategyStatic ranks candidates by great-circle distance from the
	// client ("static, albeit unoptimal metrics").
	StrategyStatic
	// StrategyRandom shuffles candidates (baseline for the ablation
	// bench).
	StrategyRandom
)

// DownloadOptions parameterize Download.
type DownloadOptions struct {
	// Strategy orders candidate depots (default StrategyAuto).
	Strategy Strategy
	// Parallelism is the number of concurrent extent fetchers; 0 or 1
	// reproduces the paper's sequential download, >1 implements the
	// "threaded retrievals" future work.
	Parallelism int
	// MaxAttemptsPerExtent bounds failover (0 = try every candidate).
	MaxAttemptsPerExtent int
	// SkipVerify disables end-to-end checksum verification even when the
	// exNode records digests.
	SkipVerify bool
	// Seed makes StrategyRandom deterministic.
	Seed int64
	// DisableCoding skips parity/Reed-Solomon recovery when replicas
	// fail (for ablation benches).
	DisableCoding bool
	// DecryptionKey unseals an encrypted exNode after retrieval. Required
	// when the exNode records a cipher, unless Raw is set.
	DecryptionKey []byte
	// Raw returns the stored ciphertext of an encrypted exNode without
	// decrypting — what Augment uses to replicate sealed data without
	// ever holding the key.
	Raw bool
	// Readahead is how many extents a streaming reader prefetches beyond
	// the one being consumed (0 = fully lazy, the paper's mode). Memory
	// stays bounded at Readahead+1 extents. Ignored by non-streaming
	// downloads, which parallelise via Parallelism instead.
	Readahead int
	// Budget bounds the whole download in (possibly simulated) time:
	// once exceeded, remaining extents are not attempted and the download
	// fails with ErrBudgetExceeded. Zero means no bound. Both the
	// sequential and parallel paths enforce it; an in-flight extent is
	// allowed to finish, but no further extent starts past the deadline.
	Budget time.Duration
	// Span, when sampled, traces the download: each extent fetch becomes a
	// child span, IBP operations run under it (propagated to depots over
	// the wire), and the transfer engine's hedging decisions are recorded
	// against it. Mint one with obs.NewRootSpan (xnd does this for
	// --trace).
	Span obs.SpanContext
}

// ErrBudgetExceeded is returned when DownloadOptions.Budget runs out.
var ErrBudgetExceeded = errors.New("core: download time budget exceeded")

// ErrEncrypted is returned when downloading an encrypted exNode without a
// key.
var ErrEncrypted = errors.New("core: exnode is encrypted; supply DownloadOptions.DecryptionKey or set Raw")

// ExtentReport records how one extent of a download was served.
type ExtentReport struct {
	Start, End int64
	Depot      string    // depot display name that served it ("" on failure)
	Addr       string    // depot address
	Attempts   int       // candidates tried (including the winner)
	Coded      bool      // served via parity/RS recovery instead of a replica
	Trail      []Attempt // every attempt in order, failures included
	Err        error     // non-nil when the extent could not be retrieved
}

// Report summarizes a download for the experiment harness.
type Report struct {
	Extents   []ExtentReport
	Duration  time.Duration
	Bytes     int64
	Failovers int // failed attempts across all extents
}

// OK reports whether every extent was retrieved.
func (r *Report) OK() bool {
	for _, e := range r.Extents {
		if e.Err != nil {
			return false
		}
	}
	return true
}

// Download retrieves the entire file described by x.
//
// The returned slice is borrowed from bufpool (ownership rule 4): the
// caller owns it and may release it with bufpool.Put once done with the
// contents, which lets a steady-state consumer download without a single
// large allocation per file. Callers that keep the data simply never Put.
func (t *Tools) Download(x *exnode.ExNode, opts DownloadOptions) ([]byte, *Report, error) {
	return t.DownloadRange(x, 0, x.Size, opts)
}

// DownloadRange retrieves bytes [offset, offset+length) of the file: the
// range is split into extents at segment boundaries, each extent is
// fetched from the best candidate depot with failover, and coded blocks
// are used for recovery when every replica of an extent is unavailable.
// The returned slice is pool-backed; see Download for the ownership
// contract.
func (t *Tools) DownloadRange(x *exnode.ExNode, offset, length int64, opts DownloadOptions) ([]byte, *Report, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, err
	}
	if offset < 0 || offset+length > x.Size || length < 0 {
		return nil, nil, fmt.Errorf("core: range [%d,%d) outside file of %d bytes", offset, offset+length, x.Size)
	}
	start := t.clock().Now()
	exts := x.Boundaries(offset, offset+length)
	// The assembly buffer is borrowed, not allocated: extents are fetched
	// straight into their slot, and ownership passes to the caller on
	// return (see Download). Beyond skipping the allocation this also
	// skips zeroing `length` bytes the fetches are about to overwrite.
	buf := bufpool.Get(int(length))
	report := &Report{Extents: make([]ExtentReport, len(exts))}

	dir := t.staticDirectoryIfNeeded(x, opts)
	overBudget := func() bool {
		return opts.Budget > 0 && t.clock().Since(start) > opts.Budget
	}
	workers := opts.Parallelism
	if workers <= 1 {
		for i, ext := range exts {
			if overBudget() {
				report.Extents[i] = ExtentReport{Start: ext.Start, End: ext.End, Err: ErrBudgetExceeded}
				continue
			}
			er := t.fetchExtent(x, ext, buf[ext.Start-offset:ext.End-offset], opts, dir, i)
			report.Extents[i] = er
			report.Failovers += er.Attempts
			if er.Err == nil && er.Attempts > 0 {
				report.Failovers-- // the successful attempt is not a failover
			}
		}
	} else {
		type job struct {
			idx int
			ext exnode.Extent
		}
		jobs := make(chan job)
		done := make(chan struct{})
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					// The deadline is checked before each job is fetched
					// (the clock serializes reads, so workers cannot race
					// it into a stale answer): skipped extents report
					// ErrBudgetExceeded rather than pretending no budget
					// was set.
					if overBudget() {
						report.Extents[j.idx] = ExtentReport{Start: j.ext.Start, End: j.ext.End, Err: ErrBudgetExceeded}
						continue
					}
					er := t.fetchExtent(x, j.ext, buf[j.ext.Start-offset:j.ext.End-offset], opts, dir, j.idx)
					report.Extents[j.idx] = er
				}
				done <- struct{}{}
			}()
		}
		for i, ext := range exts {
			jobs <- job{i, ext}
		}
		close(jobs)
		for w := 0; w < workers; w++ {
			<-done
		}
		for _, er := range report.Extents {
			report.Failovers += er.Attempts
			if er.Err == nil && er.Attempts > 0 {
				report.Failovers--
			}
		}
	}

	report.Duration = t.clock().Since(start)
	report.Bytes = length
	for _, er := range report.Extents {
		if er.Err != nil {
			bufpool.Put(buf)
			return nil, report, fmt.Errorf("core: download %q: extent [%d,%d): %w",
				x.Name, er.Start, er.End, er.Err)
		}
	}
	buf, err := t.unsealRange(x, buf, offset, opts)
	if err != nil {
		return nil, report, err
	}
	return buf, report, nil
}

// unsealRange decrypts downloaded bytes when the exNode is encrypted. CTR
// mode makes arbitrary offsets decryptable independently.
//
// unsealRange consumes buf: on the plaintext path it is returned
// unchanged (still owned by the caller), on every other path — fresh
// plaintext or error — buf is released to the pool and must not be
// touched again by the caller.
func (t *Tools) unsealRange(x *exnode.ExNode, buf []byte, offset int64, opts DownloadOptions) ([]byte, error) {
	if !x.Encrypted() || opts.Raw {
		return buf, nil
	}
	if opts.DecryptionKey == nil {
		bufpool.Put(buf)
		return nil, ErrEncrypted
	}
	if x.Cipher != sealing.CipherAES256CTR {
		bufpool.Put(buf)
		return nil, fmt.Errorf("core: unsupported cipher %q", x.Cipher)
	}
	iv, err := sealing.DecodeIV(x.IV)
	if err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	plain, err := sealing.UnsealAt(opts.DecryptionKey, iv, buf, offset)
	// Decryption produced a fresh plaintext buffer either way; the
	// ciphertext one goes back to the pool.
	bufpool.Put(buf)
	if err != nil {
		return nil, fmt.Errorf("core: unsealing %q: %w", x.Name, err)
	}
	return plain, nil
}

// staticDirectoryIfNeeded resolves the L-Bone directory only when static
// ranking can be consulted.
func (t *Tools) staticDirectoryIfNeeded(x *exnode.ExNode, opts DownloadOptions) map[string]geo.Point {
	strat := t.effectiveStrategy(opts.Strategy)
	if strat == StrategyRandom {
		return nil
	}
	out := map[string]geo.Point{}
	for addr, info := range t.depotDirectory() {
		out[addr] = info.Loc
	}
	return out
}

func (t *Tools) effectiveStrategy(s Strategy) Strategy {
	if s == StrategyAuto {
		if t.NWS != nil {
			return StrategyNWS
		}
		return StrategyStatic
	}
	return s
}

// fetchExtent retrieves one extent into dst with ranked failover. With a
// transfer engine attached the candidates are raced through it (per-depot
// concurrency slots, hedged backup attempts); without one the plain
// sequential failover loop runs.
func (t *Tools) fetchExtent(x *exnode.ExNode, ext exnode.Extent, dst []byte, opts DownloadOptions, dir map[string]geo.Point, seedMix int) ExtentReport {
	cands := t.rankCandidates(x.Candidates(ext), opts, dir, seedMix)
	er := ExtentReport{Start: ext.Start, End: ext.End}
	// Under a sampled download span each extent gets its own child span:
	// the IBP client ops and hedge events below it share the extent's span
	// as parent, and the extent itself is recorded as a synthetic EXTENT
	// event so the joined timeline shows the core layer too.
	var sc obs.SpanContext
	if opts.Span.Sampled && opts.Span.Valid() {
		sc = opts.Span.Child()
		t0 := t.clock().Now()
		defer func() {
			if o := t.IBP.Observer(); o != nil {
				ev := obs.Event{
					Time: t0, Verb: "EXTENT", Latency: t.clock().Since(t0),
					Trace: sc.TraceID, Span: sc.SpanID, Parent: opts.Span.SpanID,
					Note:  fmt.Sprintf("[%d,%d)", ext.Start, ext.End),
					Depot: er.Addr, Outcome: "success",
				}
				if er.Err != nil {
					ev.Outcome = "error"
					ev.Err = er.Err.Error()
				} else {
					ev.Bytes = ext.Len()
				}
				o.Record(ev)
			}
		}()
	}
	var ok bool
	if t.Transfer != nil {
		ok = t.raceCandidates(&er, cands, ext, dst, opts, sc)
	} else {
		ok = t.tryCandidates(&er, cands, ext, dst, opts, sc)
	}
	if ok {
		return er
	}
	// Every replica failed (or none existed): try coded recovery.
	if !opts.DisableCoding {
		t0 := t.clock().Now()
		depot, err := t.recoverFromCoding(x, ext, dst, opts)
		a := Attempt{Depot: depot, Coded: true, Start: t0, Duration: t.clock().Since(t0)}
		if err == nil {
			a.Bytes = ext.Len()
			er.Trail = append(er.Trail, a)
			er.Depot = depot
			er.Coded = true
			er.Err = nil
			return er
		}
		a.Err = err.Error()
		er.Trail = append(er.Trail, a)
		t.logf("core: extent [%d,%d): coded recovery failed: %v", ext.Start, ext.End, err)
		if er.Err == nil {
			er.Err = err
		}
	}
	if er.Err == nil {
		er.Err = exnode.ErrNoCoverage
	}
	return er
}

// tryCandidates is the plain sequential failover loop: each ranked
// candidate is tried in turn until one serves the extent. Attempts load
// straight into dst — sequential failover never has two writers.
func (t *Tools) tryCandidates(er *ExtentReport, cands []*exnode.Mapping, ext exnode.Extent, dst []byte, opts DownloadOptions, sc obs.SpanContext) bool {
	max := opts.MaxAttemptsPerExtent
	for i, m := range cands {
		if max > 0 && i >= max {
			break
		}
		er.Attempts++
		t0 := t.clock().Now()
		err := t.attemptLoad(m, ext, dst, opts, nil, sc)
		a := Attempt{Depot: m.Depot, Addr: m.Read.Addr, Start: t0, Duration: t.clock().Since(t0)}
		if err != nil {
			a.Err = err.Error()
			er.Trail = append(er.Trail, a)
			t.logf("core: extent [%d,%d): depot %s failed: %v", ext.Start, ext.End, m.Depot, err)
			er.Err = err
			continue
		}
		a.Bytes = ext.Len()
		er.Trail = append(er.Trail, a)
		er.Depot = m.Depot
		er.Addr = m.Read.Addr
		er.Err = nil
		return true
	}
	return false
}

// raceCandidates walks the ranked candidates through the transfer engine.
// Each step races cands[i] as primary against cands[i+1] as the hedged
// backup (launched only if the primary outlives the engine's threshold);
// on total failure of a step the walk falls over past every candidate it
// consumed. The primary loads straight into dst; a launched backup loads
// into a pooled buffer of its own and is copied out only when it wins.
func (t *Tools) raceCandidates(er *ExtentReport, cands []*exnode.Mapping, ext exnode.Extent, dst []byte, opts DownloadOptions, sc obs.SpanContext) bool {
	max := opts.MaxAttemptsPerExtent
	for i := 0; i < len(cands); {
		if max > 0 && er.Attempts >= max {
			break
		}
		pair := [2]*exnode.Mapping{cands[i], nil}
		addrs := [2]string{cands[i].Read.Addr, ""}
		if i+1 < len(cands) && (max <= 0 || er.Attempts+1 < max) {
			pair[1] = cands[i+1]
			addrs[1] = cands[i+1].Read.Addr
		}
		// Two hedged attempts must never share dst, but only the backup
		// needs its own buffer: the primary loads straight into dst, so
		// the common case (primary wins, no hedge or a lost hedge) moves
		// every byte exactly once. HedgeCtx waits for every launched
		// attempt before returning, so by the time the winner is resolved
		// nobody is still writing either buffer — if the backup won, the
		// primary's dead prefix in dst is simply overwritten by the copy.
		var backup []byte
		winner, out := t.Transfer.HedgeCtx(sc, addrs, func(idx int, cancel <-chan struct{}) error {
			buf := dst
			if idx == 1 {
				buf = bufpool.Get(int(ext.Len()))
			}
			if err := t.attemptLoad(pair[idx], ext, buf, opts, cancel, sc); err != nil {
				if idx == 1 {
					bufpool.Put(buf)
				}
				return err
			}
			if idx == 1 {
				backup = buf
			}
			return nil
		})
		launched := 0
		for idx, o := range out {
			if o == nil {
				continue
			}
			launched++
			er.Attempts++
			a := Attempt{
				Depot: pair[idx].Depot, Addr: pair[idx].Read.Addr,
				Start: o.Start, Duration: o.End.Sub(o.Start), Hedged: o.Hedged,
			}
			if o.Err != nil {
				a.Err = o.Err.Error()
				er.Err = o.Err
				t.logf("core: extent [%d,%d): depot %s failed: %v", ext.Start, ext.End, pair[idx].Depot, o.Err)
			} else {
				a.Bytes = ext.Len()
			}
			er.Trail = append(er.Trail, a)
		}
		if winner >= 0 {
			if winner == 1 {
				copy(dst, backup)
			}
			bufpool.Put(backup)
			er.Depot = pair[winner].Depot
			er.Addr = pair[winner].Read.Addr
			er.Err = nil
			return true
		}
		bufpool.Put(backup)
		if launched == 0 {
			break
		}
		i += launched
	}
	return false
}

// attemptLoad loads ext from one mapping into the caller-owned dst (which
// must be exactly ext.Len() bytes) and verifies integrity when possible.
// A non-nil cancel may abandon the load mid-flight (the losing side of a
// hedged race); dst then holds an undefined prefix.
func (t *Tools) attemptLoad(m *exnode.Mapping, ext exnode.Extent, dst []byte, opts DownloadOptions, cancel <-chan struct{}, sc obs.SpanContext) error {
	off := ext.Start - m.Offset
	t0 := t.clock().Now()
	client := t.IBP
	if sc.Sampled && sc.Valid() {
		// Run the wire operation under the extent's span: the op event and
		// the depot's server span both join the timeline beneath it.
		client = t.IBP.WithSpan(sc)
	}
	if err := client.LoadIntoCancel(dst, m.Read, off, cancel); err != nil {
		return err
	}
	elapsed := t.clock().Since(t0)
	// Feed the observation back into NWS: real downloads are the best
	// bandwidth sensor.
	if t.NWS != nil && elapsed > 0 {
		mbits := float64(ext.Len()*8) / 1e6 / elapsed.Seconds()
		// Score the forecast against the measurement it steered before the
		// measurement itself updates the series.
		if t.Forecast != nil {
			if predicted, ok := t.NWS.Forecast(t.Site, m.Read.Addr, nws.Bandwidth); ok {
				t.Forecast.Observe(t.Site, m.Read.Addr, predicted, mbits, t.clock().Now())
			}
		}
		t.NWS.Record(t.Site, m.Read.Addr, nws.Bandwidth, mbits)
	}
	// End-to-end verification is possible when the extent spans the whole
	// mapping (the digest covers the full stored fragment).
	if !opts.SkipVerify && m.Checksum != "" && off == 0 && ext.Len() == m.Length {
		if err := integrity.Verify(dst, m.Checksum); err != nil {
			return err
		}
	}
	return nil
}

// rankCandidates orders mappings per the strategy, then demotes depots
// whose health circuit is open below every healthy candidate: they stay in
// the list as last-resort fallbacks (where the breaker fails them fast),
// but no extent pays a dial timeout against a known-dead depot while a
// healthy replica exists.
func (t *Tools) rankCandidates(cands []*exnode.Mapping, opts DownloadOptions, dir map[string]geo.Point, seedMix int) []*exnode.Mapping {
	out := t.rankByStrategy(cands, opts, dir, seedMix)
	if t.Health == nil {
		return out
	}
	healthy := make([]*exnode.Mapping, 0, len(out))
	var blocked []*exnode.Mapping
	for _, m := range out {
		if t.healthBlocked(m.Read.Addr) {
			blocked = append(blocked, m)
		} else {
			healthy = append(healthy, m)
		}
	}
	return append(healthy, blocked...)
}

// rankByStrategy orders mappings per the strategy alone.
func (t *Tools) rankByStrategy(cands []*exnode.Mapping, opts DownloadOptions, dir map[string]geo.Point, seedMix int) []*exnode.Mapping {
	out := append([]*exnode.Mapping(nil), cands...)
	switch t.effectiveStrategy(opts.Strategy) {
	case StrategyRandom:
		rng := rand.New(rand.NewSource(opts.Seed + int64(seedMix)*7919))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	case StrategyNWS:
		// Forecast bandwidth per candidate; candidates without forecasts
		// rank below all forecasted ones, ordered statically.
		type scored struct {
			m  *exnode.Mapping
			bw float64
			ok bool
			d  float64
		}
		ss := make([]scored, len(out))
		for i, m := range out {
			s := scored{m: m, d: t.staticDistance(m, dir)}
			if t.NWS != nil {
				s.bw, s.ok = t.NWS.Forecast(t.Site, m.Read.Addr, nws.Bandwidth)
			}
			ss[i] = s
		}
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].ok != ss[j].ok {
				return ss[i].ok
			}
			if ss[i].ok {
				return ss[i].bw > ss[j].bw
			}
			return ss[i].d < ss[j].d
		})
		for i, s := range ss {
			out[i] = s.m
		}
	default: // StrategyStatic
		sort.SliceStable(out, func(i, j int) bool {
			return t.staticDistance(out[i], dir) < t.staticDistance(out[j], dir)
		})
	}
	return out
}

func (t *Tools) staticDistance(m *exnode.Mapping, dir map[string]geo.Point) float64 {
	if dir == nil {
		return math.Inf(1)
	}
	p, ok := dir[m.Read.Addr]
	if !ok {
		return math.Inf(1)
	}
	return geo.Distance(t.Loc, p)
}
