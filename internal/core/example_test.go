package core_test

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
)

// Example shows the complete life of a file on the Network Storage Stack:
// upload as a striped+replicated exNode, share via XML, download.
func Example() {
	// Storage owners run depots; here, two in-process ones.
	reg := lbone.NewRegistry(0, nil)
	for i, site := range []geo.Site{geo.UTK, geo.UCSD} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte{byte(i), 10, 20, 30},
			Capacity: 32 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: site.Name + "-depot", Site: site.Name, Loc: site.Loc,
			Capacity: 32 << 20, MaxDuration: time.Hour,
		})
	}

	tools := &core.Tools{
		IBP:   ibp.NewClient(),
		LBone: core.RegistrySource{Reg: reg},
		Site:  geo.UTK.Name,
		Loc:   geo.UTK.Loc,
	}

	data := bytes.Repeat([]byte("exnode "), 1024)
	x, err := tools.Upload("demo.dat", data, core.UploadOptions{
		Replicas:  2,
		Fragments: 2,
		Duration:  time.Hour,
		Checksum:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The exNode is plain XML: serialize, "mail it to a friend", parse.
	blob, err := exnode.Marshal(x)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := exnode.Unmarshal(blob)
	if err != nil {
		log.Fatal(err)
	}

	got, _, err := tools.Download(shared, core.DownloadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replicas:", shared.Replicas())
	fmt.Println("round trip ok:", bytes.Equal(got, data))
	// Output:
	// replicas: 2
	// round trip ok: true
}
