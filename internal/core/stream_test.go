package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/transfer"
)

// TestStreamReadNeverSkipsFailedExtent is the silent-data-loss regression:
// the old reader advanced its extent cursor before the fetch, so a Read
// that failed — then was retried after the depot recovered — returned the
// NEXT extent's bytes in place of the failed one, splicing mismatched
// ranges without any error. The fix latches the failure: no later Read may
// ever return bytes that skip the failed extent.
func TestStreamReadNeverSkipsFailedExtent(t *testing.T) {
	e := newEnv(t)
	// The depot is scheduled to be down between T+10min and T+20min; the
	// schedule is baked in up front so pooled connections see it too.
	e.addDepot("A", geo.UTK, faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(10 * time.Minute), To: envStart.Add(20 * time.Minute)},
	}})
	tl := e.tools(geo.UTK, false)
	data := payload(200_000)
	x, err := tl.Upload("latch.dat", data, UploadOptions{Fragments: 4, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	extLen := int(x.Boundaries(0, x.Size)[0].Len())

	r, rep, err := tl.OpenReader(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Consume exactly the first extent while the depot is up.
	first := make([]byte, extLen)
	if _, err := io.ReadFull(r, first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, data[:extLen]) {
		t.Fatal("first extent corrupted")
	}
	if rep.Bytes != int64(extLen) {
		t.Fatalf("report.Bytes after one extent = %d, want %d (progress, not the whole range)", rep.Bytes, extLen)
	}

	// Jump into the outage: the next extent's fetch must fail.
	e.clk.Advance(10 * time.Minute)
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Fatal("read against a dead depot should fail")
	}

	// Jump past the outage: the depot is healthy again. The old reader
	// would now silently serve extent 2, dropping extent 1's bytes; the
	// fixed reader stays failed.
	e.clk.Advance(15 * time.Minute)
	buf := make([]byte, extLen)
	n, err := r.Read(buf)
	if err == nil {
		if n > 0 && bytes.Equal(buf[:n], data[2*extLen:2*extLen+n]) {
			t.Fatal("reader silently skipped the failed extent and served the next one")
		}
		t.Fatal("read after a fetch failure must keep failing, not resume")
	}
	// The report reflects only the delivered bytes.
	if rep.Bytes != int64(extLen) {
		t.Fatalf("report.Bytes after failure = %d, want %d", rep.Bytes, extLen)
	}
}

// TestStreamBudgetEnforced: the old reader ignored DownloadOptions.Budget
// entirely. Measured on the virtual clock, a streamed download over a slow
// link must stop starting new extents once the budget is spent, and the
// report must show how far it actually got.
func TestStreamBudgetEnforced(t *testing.T) {
	e := newEnv(t)
	e.addDepot("slow", geo.UTK, nil)
	e.model.SetLink(geo.Harvard.Name, geo.UTK.Name, faultnet.Link{RTT: 50 * time.Millisecond, Mbps: 1})
	tl := e.tools(geo.Harvard, false)
	data := payload(400 << 10)
	x, err := tl.Upload("budget.dat", data, UploadOptions{Fragments: 8, Depots: e.infosFor("slow")})
	if err != nil {
		t.Fatal(err)
	}
	// Each 50 KiB extent takes ~0.4s of virtual time at 1 Mbps; a 1s budget
	// admits only the first couple of extents.
	r, rep, err := tl.OpenReader(x, DownloadOptions{Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("delivered %d bytes, want partial progress", len(got))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Fatal("delivered prefix corrupted")
	}
	if rep.Bytes != int64(len(got)) {
		t.Fatalf("report.Bytes = %d, want %d (actual progress)", rep.Bytes, len(got))
	}
}

// TestStreamReportCountsFailovers: the old reader never accumulated
// Failovers, so a stream that fought through dead replicas reported a
// clean run.
func TestStreamReportCountsFailovers(t *testing.T) {
	e := newEnv(t)
	// The statically-preferred near depot goes down at T+5min, before the
	// stream starts (the schedule is set up front so pooled connections
	// from the upload observe it too).
	e.addDepot("near", geo.UNC, faultnet.Windows{Down: []faultnet.Window{
		{From: envStart.Add(5 * time.Minute), To: envStart.Add(2 * time.Hour)},
	}})
	e.addDepot("far", geo.UCSD, nil)
	tl := e.tools(geo.Harvard, false)
	data := payload(100_000)
	x, err := tl.Upload("fo.dat", data, UploadOptions{
		Replicas: 2, Fragments: 4, Depots: e.infosFor("near", "far"),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.clk.Advance(5 * time.Minute)
	r, rep, err := tl.OpenReader(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stream corrupted")
	}
	if rep.Failovers == 0 {
		t.Fatal("every extent failed over from the dead near depot, but Failovers = 0")
	}
	if rep.Bytes != int64(len(data)) {
		t.Fatalf("report.Bytes = %d, want %d", rep.Bytes, len(data))
	}
}

// TestStreamSeedMatchesDownload: StrategyRandom must pick the same
// candidate order per extent whether the range is streamed or downloaded in
// one call. The old reader mixed the post-increment cursor (extent index
// plus one) into the seed, so the two paths diverged.
func TestStreamSeedMatchesDownload(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	e.addDepot("C", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(300_000)
	x, err := tl.Upload("seed.dat", data, UploadOptions{
		Replicas: 3, Fragments: 6, Depots: e.infosFor("A", "B", "C"),
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := DownloadOptions{Strategy: StrategyRandom, Seed: 42}
	_, dlRep, err := tl.Download(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, stRep, err := tl.OpenReader(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if len(dlRep.Extents) != len(stRep.Extents) {
		t.Fatalf("extent counts differ: %d vs %d", len(dlRep.Extents), len(stRep.Extents))
	}
	for i := range dlRep.Extents {
		if dlRep.Extents[i].Depot != stRep.Extents[i].Depot {
			t.Fatalf("extent %d served by %s when downloaded but %s when streamed: seed mixing diverged",
				i, dlRep.Extents[i].Depot, stRep.Extents[i].Depot)
		}
	}
}

// TestStreamReadahead: with a readahead window the reader prefetches
// through the transfer engine, the bytes still come out exact, and every
// fetch passed through the per-depot limiter.
func TestStreamReadahead(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	tl.Transfer = transfer.New(transfer.Config{MaxPerDepot: 2, Clock: e.clk})
	data := payload(256 << 10)
	x, err := tl.Upload("ra.dat", data, UploadOptions{
		Replicas: 2, Fragments: 8, Depots: e.infosFor("A", "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r, rep, err := tl.OpenReader(x, DownloadOptions{Readahead: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readahead stream corrupted")
	}
	if !rep.OK() || len(rep.Extents) != 8 {
		t.Fatalf("report: %+v", rep)
	}
	if c := tl.Transfer.Counters(); c.LimitAcquires < 8 {
		t.Fatalf("LimitAcquires = %d, want >= 8 (every fetch holds a slot)", c.LimitAcquires)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamCloseWithInflightReadahead: closing early must not deadlock or
// leak — abandoned prefetches drain into buffered channels.
func TestStreamCloseWithInflightReadahead(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(128 << 10)
	x, err := tl.Upload("close.dat", data, UploadOptions{Fragments: 8, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := tl.OpenReader(x, DownloadOptions{Readahead: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 1)); err != io.ErrClosedPipe {
		t.Fatalf("read after close = %v", err)
	}
}
