package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/exnode"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/lbone"
)

func TestPlanPlacementsRotate(t *testing.T) {
	depots := []lbone.DepotInfo{
		{Name: "A", Site: "S1"}, {Name: "B", Site: "S1"}, {Name: "C", Site: "S2"},
	}
	jobs := []planJob{
		{replica: 0, j: 0, ext: exnode.Extent{Start: 0, End: 10}},
		{replica: 1, j: 0, ext: exnode.Extent{Start: 0, End: 10}},
	}
	plans := planPlacements(jobs, depots, PlacementRotate)
	if plans[0][0].Name != "A" || plans[1][0].Name != "B" {
		t.Fatalf("rotate plan: %v %v", plans[0][0].Name, plans[1][0].Name)
	}
	// Every plan lists every depot exactly once (failover coverage).
	for _, plan := range plans {
		seen := map[string]bool{}
		for _, d := range plan {
			seen[d.Name] = true
		}
		if len(seen) != len(depots) {
			t.Fatalf("plan misses depots: %v", plan)
		}
	}
}

func TestPlanPlacementsSiteDiverse(t *testing.T) {
	// Four depots at two sites; two copies of the same extent must land
	// at different sites.
	depots := []lbone.DepotInfo{
		{Name: "A1", Site: "S1"}, {Name: "A2", Site: "S1"},
		{Name: "B1", Site: "S2"}, {Name: "B2", Site: "S2"},
	}
	jobs := []planJob{
		{replica: 0, j: 0, ext: exnode.Extent{Start: 0, End: 100}},
		{replica: 1, j: 0, ext: exnode.Extent{Start: 0, End: 100}},
		{replica: 2, j: 0, ext: exnode.Extent{Start: 0, End: 100}},
	}
	plans := planPlacements(jobs, depots, PlacementSiteDiverse)
	s0 := plans[0][0].Site
	s1 := plans[1][0].Site
	if s0 == s1 {
		t.Fatalf("first two copies on the same site %q", s0)
	}
	// The third copy goes to the least-loaded site (both have one copy;
	// any choice is fine) — but non-overlapping extents are independent.
	jobs2 := []planJob{
		{replica: 0, j: 0, ext: exnode.Extent{Start: 0, End: 50}},
		{replica: 0, j: 1, ext: exnode.Extent{Start: 50, End: 100}},
	}
	plans2 := planPlacements(jobs2, depots, PlacementSiteDiverse)
	// No constraint violated either way; just sanity-check full coverage.
	if len(plans2[0]) != 4 || len(plans2[1]) != 4 {
		t.Fatal("plans must list all depots for failover")
	}
}

func TestSiteDiverseUploadSurvivesSiteOutage(t *testing.T) {
	// Two sites, two depots each. With site-diverse placement, killing an
	// entire site leaves every extent retrievable. With plain rotation on
	// an adversarial depot order (both same-site depots adjacent), copies
	// of an extent can land on one site.
	e := newEnv(t)
	e.addDepot("A1", geo.UTK, nil)
	e.addDepot("A2", geo.UTK, nil)
	e.addDepot("B1", geo.UCSD, nil)
	e.addDepot("B2", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(60 << 10)
	// Adversarial depot order: A1, A2, B1, B2 — rotation puts copy 0
	// frag 0 on A1 and copy 1 frag 0 on A2: same site!
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas:  2,
		Fragments: 2,
		Depots:    e.infosFor("A1", "A2", "B1", "B2"),
		Placement: PlacementSiteDiverse,
		Checksum:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify site diversity: for every extent, candidates span >1 site.
	siteOf := map[string]string{"A1": "UTK", "A2": "UTK", "B1": "UCSD", "B2": "UCSD"}
	for _, ext := range x.Boundaries(0, x.Size) {
		sites := map[string]bool{}
		for _, m := range x.Candidates(ext) {
			sites[siteOf[m.Depot]] = true
		}
		if len(sites) < 2 {
			t.Fatalf("extent [%d,%d) is single-site", ext.Start, ext.End)
		}
	}
	// Kill all of UTK; downloads still succeed from UCSD.
	now := e.clk.Now()
	for _, n := range []string{"A1", "A2"} {
		e.model.AddDepot(e.depots[n].Addr(), faultnet.DepotState{
			Site:  "UTK",
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
		})
	}
	got, _, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("site-outage download mismatch")
	}
}
