package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/ibp"
)

// healthTools builds a Tools client at the given site with a shared health
// scoreboard wired into both layers, mirroring what cmd/xnd does.
func (e *env) healthTools(site geo.Site, sb *health.Scoreboard) *Tools {
	e.t.Helper()
	client := ibp.NewClient(
		ibp.WithDialer(e.model.DialerFrom(site.Name)),
		ibp.WithClock(e.clk),
		ibp.WithDialTimeout(2*time.Second),
		ibp.WithOpTimeout(60*time.Second),
		ibp.WithHealth(sb),
	)
	return &Tools{
		IBP:    client,
		LBone:  RegistrySource{Reg: e.reg},
		Clock:  e.clk,
		Site:   site.Name,
		Loc:    site.Loc,
		Health: sb,
	}
}

// TestDownloadBreakerSkipsDeadDepot is the issue's acceptance scenario: a
// depot's link dies mid-download; the first extents pay the dial timeout
// and trip its circuit, after which every remaining extent is served from
// the surviving replica without re-paying the timeout.
func TestDownloadBreakerSkipsDeadDepot(t *testing.T) {
	e := newEnv(t)
	e.addDepot("near", geo.UNC, nil) // statically ranked first from HARVARD
	e.addDepot("far", geo.UCSD, nil)
	sb := health.New(health.Config{
		FailureThreshold: 2,
		BaseBackoff:      10 * time.Minute,
		Clock:            e.clk,
		Seed:             1,
	})
	tl := e.healthTools(geo.Harvard, sb)

	// Two full replicas striped into four fragments each: rotation places
	// one copy of every extent on each depot.
	data := payload(1 << 20)
	x, err := tl.Upload("breaker.dat", data, UploadOptions{
		Replicas:  2,
		Fragments: 4,
		Depots:    e.infosFor("near", "far"),
		Checksum:  true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The link to the near depot goes down before the download and stays
	// down: every dial to it now hangs for the full 2s dial timeout.
	e.model.SetLink(geo.Harvard.Name, geo.UNC.Name, faultnet.Link{
		RTT: 40 * time.Millisecond, Mbps: 20,
		Avail: faultnet.Windows{Down: []faultnet.Window{
			{From: e.clk.Now(), To: e.clk.Now().Add(time.Hour)},
		}},
	})

	got, rep, err := tl.Download(x, DownloadOptions{Strategy: StrategyStatic})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("download corrupted")
	}

	nearAddr := e.depots["near"].Addr()
	if st, _ := sb.State(nearAddr); st != health.StateOpen {
		t.Fatalf("near depot breaker state = %v, want open", st)
	}
	// Only the first two extents pay the dial timeout (FailureThreshold 2
	// opens the circuit); the remaining extents rank the dead depot last
	// and fetch straight from the survivor.
	if rep.Failovers != 2 {
		t.Fatalf("failovers = %d, want exactly 2 (then the breaker opens)", rep.Failovers)
	}
	for i, er := range rep.Extents[2:] {
		if er.Attempts != 1 {
			t.Fatalf("extent %d attempts = %d, want 1 (dead depot skipped)", i+2, er.Attempts)
		}
	}
	// Two timeouts at 2s each plus shaped transfer time: far below the 8s+
	// a breaker-less client would burn timing out on all four extents.
	if rep.Duration > 6*time.Second {
		t.Fatalf("download took %v of virtual time; breaker did not skip the dead depot", rep.Duration)
	}

	// The scoreboard renders the outage the way `xnd health` would show it.
	out := sb.Render()
	if !strings.Contains(out, "open") || !strings.Contains(out, "backing off") {
		t.Fatalf("render missing open/backing-off marker:\n%s", out)
	}
}

// TestUploadPlacementAvoidsOpenCircuit checks the write path: fragment
// placement reorders candidates so open-circuit depots are only used as a
// last resort.
func TestUploadPlacementAvoidsOpenCircuit(t *testing.T) {
	e := newEnv(t)
	e.addDepot("a", geo.UTK, nil)
	e.addDepot("b", geo.UCSD, nil)
	sb := health.New(health.Config{
		FailureThreshold: 1,
		BaseBackoff:      10 * time.Minute,
		Clock:            e.clk,
		Seed:             1,
	})
	tl := e.healthTools(geo.UTK, sb)

	// Trip depot a's breaker directly: one reported timeout is enough at
	// threshold 1.
	aAddr := e.depots["a"].Addr()
	sb.Report(aAddr, health.Timeout, 2*time.Second)
	if st, _ := sb.State(aAddr); st != health.StateOpen {
		t.Fatalf("state = %v, want open", st)
	}

	x, err := tl.Upload("place.dat", payload(64<<10), UploadOptions{
		Fragments: 4,
		Depots:    e.infosFor("a", "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range x.Mappings {
		if m.Depot != "b" {
			t.Fatalf("fragment placed on open-circuit depot %s", m.Depot)
		}
	}
}
