package core

import (
	"io"

	"repro/internal/exnode"
)

// streamReader implements the paper's streaming download mode ("the
// download may operate in a streaming fashion, so that the client only has
// to consume small, discrete portions of the file at a time", §2.3):
// extents are fetched lazily as the caller reads.
type streamReader struct {
	t      *Tools
	x      *exnode.ExNode
	opts   DownloadOptions
	exts   []exnode.Extent
	next   int    // next extent to fetch
	buf    []byte // unread remainder of the current extent
	report *Report
	closed bool
}

// OpenReader returns a streaming reader over the whole file. The Report is
// filled in as extents are consumed and is complete once Read returns
// io.EOF.
func (t *Tools) OpenReader(x *exnode.ExNode, opts DownloadOptions) (io.ReadCloser, *Report, error) {
	return t.OpenRangeReader(x, 0, x.Size, opts)
}

// OpenRangeReader returns a streaming reader over [offset, offset+length).
func (t *Tools) OpenRangeReader(x *exnode.ExNode, offset, length int64, opts DownloadOptions) (io.ReadCloser, *Report, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, err
	}
	exts := x.Boundaries(offset, offset+length)
	r := &streamReader{
		t:      t,
		x:      x,
		opts:   opts,
		exts:   exts,
		report: &Report{Bytes: length},
	}
	return r, r.report, nil
}

// Read implements io.Reader: it serves buffered bytes, fetching the next
// extent (with failover) when the buffer drains.
func (r *streamReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, io.ErrClosedPipe
	}
	for len(r.buf) == 0 {
		if r.next >= len(r.exts) {
			return 0, io.EOF
		}
		ext := r.exts[r.next]
		r.next++
		dst := make([]byte, ext.Len())
		dir := r.t.staticDirectoryIfNeeded(r.x, r.opts)
		start := r.t.clock().Now()
		er := r.t.fetchExtent(r.x, ext, dst, r.opts, dir, r.next)
		r.report.Duration += r.t.clock().Since(start)
		r.report.Extents = append(r.report.Extents, er)
		if er.Err != nil {
			return 0, er.Err
		}
		dst, err := r.t.unsealRange(r.x, dst, ext.Start, r.opts)
		if err != nil {
			return 0, err
		}
		r.buf = dst
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// Close releases the reader.
func (r *streamReader) Close() error {
	r.closed = true
	r.buf = nil
	return nil
}
