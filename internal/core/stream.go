package core

import (
	"io"
	"time"

	"repro/internal/bufpool"
	"repro/internal/exnode"
	"repro/internal/geo"
)

// streamReader implements the paper's streaming download mode ("the
// download may operate in a streaming fashion, so that the client only has
// to consume small, discrete portions of the file at a time", §2.3):
// extents are fetched as the caller reads, optionally prefetched up to
// DownloadOptions.Readahead extents ahead through the transfer engine so a
// steady consumer overlaps network time with consumption while memory stays
// bounded at Readahead+1 extents.
//
// Error handling is strict: the reader only advances past an extent once
// its bytes are fully in hand, and any fetch failure latches — every later
// Read returns the same error. A retried Read can therefore never silently
// skip a failed extent's bytes and splice mismatched ranges together.
type streamReader struct {
	t        *Tools
	x        *exnode.ExNode
	opts     DownloadOptions
	exts     []exnode.Extent
	dir      map[string]geo.Point
	start    time.Time              // budget + duration accounting baseline
	inflight map[int]chan extentRes // scheduled fetches by extent index
	sched    int                    // next extent index to schedule
	next     int                    // next extent index to consume
	buf      []byte                 // unread remainder of the current extent
	cur      []byte                 // pooled buffer backing buf (nil when buf owns its bytes)
	err      error                  // latched permanent error
	report   *Report
	closed   bool
}

// extentRes is one background fetch's result. The channel carrying it is
// buffered so an abandoned fetch (reader closed early) never leaks its
// goroutine.
type extentRes struct {
	er   ExtentReport
	data []byte
}

// OpenReader returns a streaming reader over the whole file. The Report is
// filled in as extents are consumed and is complete once Read returns
// io.EOF: Bytes and Failovers reflect actual progress, not the requested
// range.
func (t *Tools) OpenReader(x *exnode.ExNode, opts DownloadOptions) (io.ReadCloser, *Report, error) {
	return t.OpenRangeReader(x, 0, x.Size, opts)
}

// OpenRangeReader returns a streaming reader over [offset, offset+length).
func (t *Tools) OpenRangeReader(x *exnode.ExNode, offset, length int64, opts DownloadOptions) (io.ReadCloser, *Report, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, err
	}
	exts := x.Boundaries(offset, offset+length)
	r := &streamReader{
		t:        t,
		x:        x,
		opts:     opts,
		exts:     exts,
		dir:      t.staticDirectoryIfNeeded(x, opts),
		start:    t.clock().Now(),
		inflight: make(map[int]chan extentRes),
		report:   &Report{},
	}
	return r, r.report, nil
}

func (r *streamReader) overBudget() bool {
	return r.opts.Budget > 0 && r.t.clock().Since(r.start) > r.opts.Budget
}

// schedule launches background fetches for every extent in the window
// [next, next+Readahead] that is not already in flight. With Readahead 0
// this degenerates to fetching exactly the extent about to be consumed —
// the paper's lazy mode, just off the caller's goroutine. The budget is
// checked as each fetch starts: extents in flight at the deadline finish,
// nothing new starts.
func (r *streamReader) schedule() {
	window := r.opts.Readahead
	if window < 0 {
		window = 0
	}
	hi := r.next + 1 + window
	if hi > len(r.exts) {
		hi = len(r.exts)
	}
	if r.sched < r.next {
		r.sched = r.next
	}
	for ; r.sched < hi; r.sched++ {
		idx := r.sched
		ext := r.exts[idx]
		ch := make(chan extentRes, 1)
		r.inflight[idx] = ch
		go func() {
			if r.overBudget() {
				ch <- extentRes{er: ExtentReport{Start: ext.Start, End: ext.End, Err: ErrBudgetExceeded}}
				return
			}
			// A pooled buffer per in-flight extent: the pool's footprint is
			// bounded by the readahead window, and the buffer is released
			// once the extent is consumed (or its fetch fails).
			dst := bufpool.Get(int(ext.Len()))
			// The seed mix is the extent index — identical to
			// DownloadRange's worker path, so StrategyRandom produces the
			// same candidate order whether a range is streamed or
			// downloaded in one call.
			er := r.t.fetchExtent(r.x, ext, dst, r.opts, r.dir, idx)
			ch <- extentRes{er: er, data: dst}
		}()
	}
}

// Read implements io.Reader: it serves buffered bytes, consuming the next
// extent (and keeping the readahead window full) when the buffer drains.
func (r *streamReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, io.ErrClosedPipe
	}
	if r.err != nil {
		return 0, r.err
	}
	for len(r.buf) == 0 {
		// The previous extent is fully consumed: its pooled buffer goes
		// back before the next one is fetched.
		if r.cur != nil {
			bufpool.Put(r.cur)
			r.cur = nil
		}
		if r.next >= len(r.exts) {
			return 0, io.EOF
		}
		r.schedule()
		ext := r.exts[r.next]
		res := <-r.inflight[r.next]
		delete(r.inflight, r.next)
		r.report.Extents = append(r.report.Extents, res.er)
		r.report.Failovers += res.er.Attempts
		if res.er.Err == nil && res.er.Attempts > 0 {
			r.report.Failovers-- // the successful attempt is not a failover
		}
		r.report.Duration = r.t.clock().Since(r.start)
		if res.er.Err != nil {
			// Do not advance: the extent was never delivered. Latch so a
			// caller that retries Read gets the failure again instead of
			// the next extent's bytes spliced over the hole.
			bufpool.Put(res.data)
			r.err = res.er.Err
			return 0, r.err
		}
		// unsealRange consumes res.data: on the plaintext path it comes
		// back as data, otherwise it is already released to the pool.
		data, err := r.t.unsealRange(r.x, res.data, ext.Start, r.opts)
		if err != nil {
			r.err = err
			return 0, err
		}
		r.report.Bytes += ext.Len()
		r.next++ // advance only once the extent is fully in hand
		r.buf = data
		if !r.x.Encrypted() || r.opts.Raw {
			r.cur = data
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// Close releases the reader. In-flight readahead fetches finish in the
// background and are discarded (their result channels are buffered; their
// pooled buffers are simply dropped to the garbage collector, which the
// pool contract allows).
func (r *streamReader) Close() error {
	r.closed = true
	r.buf = nil
	if r.cur != nil {
		bufpool.Put(r.cur)
		r.cur = nil
	}
	return nil
}
