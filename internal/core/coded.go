package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/erasure"
	"repro/internal/exnode"
	"repro/internal/ibp"
	"repro/internal/integrity"
	"repro/internal/lbone"
)

// This file implements the paper's §4 future work: "with parity coding
// blocks, we can equip the exnodes with the ability to use RAID techniques
// to perform fault-tolerant downloads without requiring full replication.
// To reduce storage needs further, Reed-Solomon coding may be employed as
// well."

// CodedOptions parameterize coded uploads.
type CodedOptions struct {
	// DataBlocks (k) and ParityBlocks (m): any k of k+m blocks rebuild
	// the data. For XOR parity m is forced to 1.
	DataBlocks   int
	ParityBlocks int
	// Duration, Reliability, Depots, Checksum as in UploadOptions.
	Duration    time.Duration
	Reliability ibp.Reliability
	Depots      []lbone.DepotInfo
	Checksum    bool
}

// UploadRS stores data as one Reed-Solomon coding group of k data and m
// parity blocks, each on its own depot when enough are available.
func (t *Tools) UploadRS(name string, data []byte, opts CodedOptions) (*exnode.ExNode, error) {
	if opts.DataBlocks <= 0 {
		return nil, errors.New("core: coded upload needs DataBlocks >= 1")
	}
	if opts.ParityBlocks <= 0 {
		return nil, errors.New("core: coded upload needs ParityBlocks >= 1")
	}
	rs, err := erasure.NewRS(opts.DataBlocks, opts.ParityBlocks)
	if err != nil {
		return nil, err
	}
	blocks := erasure.Split(data, opts.DataBlocks)
	parity, err := rs.Encode(blocks)
	if err != nil {
		return nil, err
	}
	return t.uploadCodingGroup(name, data, blocks, parity, exnode.FuncRSData, exnode.FuncRSParity, opts)
}

// UploadXOR stores data as k data blocks plus one XOR parity block — the
// RAID-5 scheme, tolerating any single block loss at 1/k storage overhead.
func (t *Tools) UploadXOR(name string, data []byte, opts CodedOptions) (*exnode.ExNode, error) {
	if opts.DataBlocks <= 0 {
		return nil, errors.New("core: coded upload needs DataBlocks >= 1")
	}
	opts.ParityBlocks = 1
	blocks := erasure.Split(data, opts.DataBlocks)
	parity, err := erasure.XORParity(blocks)
	if err != nil {
		return nil, err
	}
	return t.uploadCodingGroup(name, data, blocks, [][]byte{parity}, exnode.FuncRSData, exnode.FuncParity, opts)
}

func (t *Tools) uploadCodingGroup(name string, data []byte, blocks, parity [][]byte, dataFn, parityFn exnode.Function, opts CodedOptions) (*exnode.ExNode, error) {
	if opts.Duration <= 0 {
		opts.Duration = DefaultDuration
	}
	if opts.Reliability == "" {
		opts.Reliability = ibp.Hard
	}
	depots := opts.Depots
	if depots == nil {
		if t.LBone == nil {
			return nil, errors.New("core: coded upload needs explicit depots or an L-Bone")
		}
		var err error
		depots, err = t.LBone.Query(lbone.Requirements{MinDuration: opts.Duration, Near: &t.Loc})
		if err != nil {
			return nil, discoveryErr("depot discovery", err)
		}
	}
	if len(depots) == 0 {
		return nil, errors.New("core: no depots available for coded upload")
	}
	k, m := len(blocks), len(parity)
	blockSize := int64(len(blocks[0]))
	group := codingGroupID(name, 0)
	x := exnode.New(name, int64(len(data)))
	x.Created = t.clock().Now()
	all := append(append([][]byte{}, blocks...), parity...)
	for i, blk := range all {
		depot := depots[i%len(depots)]
		set, err := t.IBP.Allocate(depot.Addr, blockSize, opts.Duration, opts.Reliability)
		if err != nil {
			return nil, fmt.Errorf("core: coded upload block %d on %s: %w", i, depot.Name, err)
		}
		if _, err := t.IBP.Store(set.Write, blk); err != nil {
			t.IBP.Delete(set.Manage)
			return nil, fmt.Errorf("core: coded upload block %d on %s: %w", i, depot.Name, err)
		}
		fn := dataFn
		if i >= k {
			fn = parityFn
		}
		mp := &exnode.Mapping{
			Offset:       0,
			Length:       int64(len(data)),
			Read:         set.Read,
			Write:        set.Write,
			Manage:       set.Manage,
			Function:     fn,
			Group:        group,
			BlockIndex:   i,
			DataBlocks:   k,
			ParityBlocks: m,
			BlockSize:    blockSize,
			Depot:        depot.Name,
			Expires:      t.clock().Now().Add(opts.Duration),
		}
		if opts.Checksum {
			mp.Checksum = integrity.Sum(blk)
		}
		x.Add(mp)
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}

func codingGroupID(name string, n int) string {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return '_'
		}
		return r
	}, name)
	return fmt.Sprintf("%s.g%d", clean, n)
}

// recoverFromCoding rebuilds extent ext from a coding group covering it,
// loading at least k of its blocks and decoding. It returns a display name
// describing the recovery source.
func (t *Tools) recoverFromCoding(x *exnode.ExNode, ext exnode.Extent, dst []byte, opts DownloadOptions) (string, error) {
	groups := x.CodingGroups()
	if len(groups) == 0 {
		return "", errors.New("core: no coding groups in exnode")
	}
	var lastErr error
	for _, ms := range groups {
		if len(ms) == 0 {
			continue
		}
		g := ms[0]
		if !(g.Offset <= ext.Start && ext.End <= g.Offset+g.Length) {
			continue // group does not protect this extent
		}
		data, err := t.decodeGroupShared(ms, opts)
		if err != nil {
			lastErr = err
			continue
		}
		copy(dst, data[ext.Start-g.Offset:ext.End-g.Offset])
		return fmt.Sprintf("coded(%s)", g.Group), nil
	}
	if lastErr == nil {
		lastErr = errors.New("core: no coding group covers the extent")
	}
	return "", lastErr
}

// decodeGroupShared collapses concurrent decodes of one coding group
// through the transfer engine's singleflight: parallel extent workers (or
// readahead fetches) that all lost their replicas pay for one decode — k
// block loads — instead of k loads each. The shared slice is copied out by
// every caller and never written.
func (t *Tools) decodeGroupShared(ms []*exnode.Mapping, opts DownloadOptions) ([]byte, error) {
	if t.Transfer == nil {
		return t.decodeGroup(ms, opts)
	}
	data, shared, err := t.Transfer.GroupDo(ms[0].Group, func() ([]byte, error) {
		return t.decodeGroup(ms, opts)
	})
	if shared {
		t.logf("core: coded group %s: reused a concurrent decode", ms[0].Group)
	}
	return data, err
}

// decodeGroup loads the group's surviving blocks and reconstructs the
// original group payload.
func (t *Tools) decodeGroup(ms []*exnode.Mapping, opts DownloadOptions) ([]byte, error) {
	g := ms[0]
	k, m := g.DataBlocks, g.ParityBlocks
	blocks := make([][]byte, k+m)
	survivors := 0
	isRS := false
	for _, mp := range ms {
		if mp.Function == exnode.FuncRSParity {
			isRS = true
		}
	}
	for _, mp := range ms {
		if survivors >= k && allDataPresent(blocks, k) {
			break
		}
		data, err := t.IBP.Load(mp.Read, 0, mp.BlockSize)
		if err != nil {
			t.logf("core: coded block %d (%s) unavailable: %v", mp.BlockIndex, mp.Depot, err)
			continue
		}
		if !opts.SkipVerify && mp.Checksum != "" {
			if err := integrity.Verify(data, mp.Checksum); err != nil {
				t.logf("core: coded block %d (%s) corrupt: %v", mp.BlockIndex, mp.Depot, err)
				continue
			}
		}
		if mp.BlockIndex >= 0 && mp.BlockIndex < len(blocks) && blocks[mp.BlockIndex] == nil {
			blocks[mp.BlockIndex] = data
			survivors++
		}
	}
	var dataBlocks [][]byte
	var err error
	if isRS {
		rs, rerr := erasure.NewRS(k, m)
		if rerr != nil {
			return nil, rerr
		}
		dataBlocks, err = rs.Decode(blocks)
	} else {
		dataBlocks, err = erasure.XORRecover(blocks)
	}
	if err != nil {
		return nil, err
	}
	return erasure.Join(dataBlocks, int(g.Length)), nil
}

func allDataPresent(blocks [][]byte, k int) bool {
	for i := 0; i < k; i++ {
		if blocks[i] == nil {
			return false
		}
	}
	return true
}
