package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/geo"
)

// TestStreamReaderPooledAllocs is the allocation regression for the
// streaming reader: the old code did `make([]byte, ext.Len())` per extent
// plus a second full-length buffer inside the client's Load, so streaming
// an N-byte file allocated well over 2N bytes. The pooled path borrows
// every extent buffer from bufpool and reads the wire payload straight
// into it, so the steady-state large-buffer allocation rate is zero and
// the per-stream total allocations stay far below what even one
// full-length copy per extent would cost.
func TestStreamReaderPooledAllocs(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, faultnet.AlwaysUp{})
	tl := e.tools(geo.UTK, false)

	const (
		fileSize = 1 << 20
		frags    = 16
	)
	data := payload(fileSize)
	x, err := tl.Upload("allocs.dat", data, UploadOptions{Fragments: frags, Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}

	streamAll := func() {
		r, _, err := tl.OpenReader(x, DownloadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if !bytes.Equal(got, data) {
			t.Fatal("streamed bytes mismatch")
		}
	}
	// One warm-up run primes the buffer pool and the client's connection
	// pool so the measured runs see steady state.
	streamAll()

	// io.ReadAll itself allocates its result (~2x fileSize worth of
	// growth): measure the reader alone by draining into a fixed sink.
	sink := make([]byte, 64<<10)
	drain := func() {
		r, _, err := tl.OpenReader(x, DownloadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for {
			if _, err := r.Read(sink); err == io.EOF {
				return
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	drain()

	allocs := testing.AllocsPerRun(5, drain)
	perExtent := allocs / frags
	// The wire exchange costs a few dozen small allocations per extent
	// (request tokens, response parsing, report entries, goroutine). One
	// reintroduced full-extent buffer per extent adds at least 2 more
	// large ones plus the client-side blob copy; the bound is set midway
	// so the regression trips it while normal jitter does not.
	if perExtent > 120 {
		t.Fatalf("streaming allocates %.0f objects per extent (%.0f total), want <= 120 — an extent-sized copy is back on the path", perExtent, allocs)
	}
}
