package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/geo"
)

func TestMaintainHealthyIsNoop(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(16 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := tl.Maintain(x, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 0 || rep.TrimmedDead != 0 || rep.AddedReplicas != 0 {
		t.Fatalf("healthy maintain acted: %+v", rep)
	}
	if rep.MinCoverage != 2 || len(out.Mappings) != 2 {
		t.Fatalf("coverage = %d, mappings = %d", rep.MinCoverage, len(out.Mappings))
	}
}

func TestMaintainRefreshesExpiring(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	x, err := tl.Upload("f", payload(4<<10), UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	before := x.Mappings[0].Expires
	// Expiring within the 24h default window: a refresh must fire.
	_, rep, err := tl.Maintain(x, MaintainOptions{RefreshTo: 72 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 2 {
		t.Fatalf("refreshed = %d, want 2", rep.Refreshed)
	}
	if !x.Mappings[0].Expires.After(before.Add(24 * time.Hour)) {
		t.Fatalf("expiry not extended: %v -> %v", before, x.Mappings[0].Expires)
	}
}

func TestMaintainTrimsGoneAndRepairs(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	e.addDepot("C", geo.UNC, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(24 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 48 * time.Hour, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Permanently delete the copy on A (allocation gone, depot still up).
	if _, err := tl.IBP.Delete(x.Mappings[0].Manage); err != nil {
		t.Fatal(err)
	}
	out, rep, err := tl.Maintain(x, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Hour, RefreshTo: 48 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedDead != 1 {
		t.Fatalf("trimmed = %d, want 1", rep.TrimmedDead)
	}
	if rep.AddedReplicas != 1 {
		t.Fatalf("added = %d, want 1", rep.AddedReplicas)
	}
	if rep.MinCoverage < 2 {
		t.Fatalf("post-repair coverage = %d", rep.MinCoverage)
	}
	got, _, err := tl.Download(out, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after repair: %v", err)
	}
}

func TestMaintainDoesNotTrimDownDepots(t *testing.T) {
	// A depot being down is temporary (the paper's cron restart): its
	// mappings stay in the exnode; only coverage repair kicks in.
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	e.addDepot("C", geo.UNC, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(8 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas: 2, Depots: e.infosFor("A", "B"), Duration: 48 * time.Hour, Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := e.clk.Now()
	e.model.AddDepot(e.depots["A"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	out, rep, err := tl.Maintain(x, MaintainOptions{MinCoverage: 2, RefreshBelow: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedDead != 0 {
		t.Fatalf("down depot was trimmed: %+v", rep)
	}
	if rep.AddedReplicas != 1 {
		t.Fatalf("added = %d, want 1 (coverage dropped to 1 while A is down)", rep.AddedReplicas)
	}
	// The down depot's mapping is still there — when A comes back the
	// exnode has 3 copies.
	count := 0
	for _, m := range out.Mappings {
		if m.Depot == "A" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("A mappings = %d, want 1", count)
	}
}

func TestWholeReplicaBaselineLosesWhereExtentsWin(t *testing.T) {
	// The ablation behind the paper's extent-based download: take two
	// copies and kill ONE depot from EACH copy. No single copy is fully
	// up, so the whole-replica baseline fails; extent-level failover
	// stitches the file together from the surviving halves.
	e := newEnv(t)
	e.addDepot("A1", geo.UTK, nil)
	e.addDepot("A2", geo.UTK, nil)
	e.addDepot("B1", geo.UCSD, nil)
	e.addDepot("B2", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(40 << 10)
	// copy 0 = A1+A2, copy 1 = B1+B2 (two fragments each).
	x, err := tl.Upload("f", data, UploadOptions{
		Replicas:            2,
		Fragments:           2,
		Depots:              e.infosFor("A1", "A2", "B1", "B2"),
		Checksum:            true,
		FragmentsPerReplica: []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Place copies deliberately: Upload rotates, so find which depots
	// hold copy 0 and kill one from each copy.
	byReplica := map[int][]string{}
	for _, m := range x.Mappings {
		byReplica[m.Replica] = append(byReplica[m.Replica], m.Depot)
	}
	kill := func(name string) {
		now := e.clk.Now()
		e.model.AddDepot(e.depots[name].Addr(), faultnet.DepotState{
			Site:  "UTK",
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
		})
	}
	kill(byReplica[0][0])
	kill(byReplica[1][1])

	// Whole-replica baseline: every copy has a dead fragment → fails.
	if _, rep, err := tl.DownloadWholeReplica(x, DownloadOptions{}); err == nil {
		t.Fatalf("baseline should fail with one dead depot per copy (report %+v)", rep)
	}
	// Extent-based download: survives.
	got, rep, err := tl.Download(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("extent download mismatch")
	}
	if !rep.OK() {
		t.Fatalf("report: %+v", rep)
	}
}

func TestWholeReplicaSucceedsWhenACopyIsIntact(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	data := payload(16 << 10)
	x, err := tl.Upload("f", data, UploadOptions{Replicas: 2, Depots: e.infosFor("A", "B"), Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	// Kill A: copy on B is intact; the baseline fails over to it.
	now := e.clk.Now()
	e.model.AddDepot(e.depots["A"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	got, rep, err := tl.DownloadWholeReplica(x, DownloadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("baseline mismatch")
	}
	if rep.Failovers == 0 && rep.Extents[0].Depot != "B" {
		t.Fatalf("expected service from B: %+v", rep)
	}
}

func TestAugmentThirdParty(t *testing.T) {
	e := newEnv(t)
	e.addDepot("SRC1", geo.UTK, nil)
	e.addDepot("SRC2", geo.UTK, nil)
	e.addDepot("DST1", geo.Harvard, nil)
	e.addDepot("DST2", geo.Harvard, nil)
	// The depots must dial through the simulated WAN for COPY transfers.
	tl := e.tools(geo.UTK, false)
	data := payload(48 << 10)
	x, err := tl.Upload("f", data, UploadOptions{
		Fragments: 2, Depots: e.infosFor("SRC1", "SRC2"), Checksum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	near := geo.Harvard.Loc
	aug, err := tl.Augment(x, AugmentOptions{
		Replicas:   1,
		Near:       &near,
		ThirdParty: true,
		Depots:     e.infosFor("DST1", "DST2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if aug.Replicas() != 2 {
		t.Fatalf("replicas = %d", aug.Replicas())
	}
	// New mappings preserve fragment boundaries and checksums.
	newMs := aug.ReplicaMappings(1)
	oldMs := aug.ReplicaMappings(0)
	if len(newMs) != len(oldMs) {
		t.Fatalf("fragments: %d vs %d", len(newMs), len(oldMs))
	}
	for i := range newMs {
		if newMs[i].Offset != oldMs[i].Offset || newMs[i].Checksum != oldMs[i].Checksum {
			t.Fatalf("fragment %d not preserved", i)
		}
	}
	// Kill the source depots: the copied replica alone serves the file,
	// proving real bytes moved depot-to-depot.
	now := e.clk.Now()
	for _, n := range []string{"SRC1", "SRC2"} {
		e.model.AddDepot(e.depots[n].Addr(), faultnet.DepotState{
			Site:  "UTK",
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
		})
	}
	got, _, err := tl.Download(aug, DownloadOptions{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("download from copied replica: %v", err)
	}
}

func TestAugmentThirdPartyNeedsAvailableReplica(t *testing.T) {
	e := newEnv(t)
	e.addDepot("A", geo.UTK, nil)
	e.addDepot("B", geo.UCSD, nil)
	tl := e.tools(geo.UTK, false)
	x, err := tl.Upload("f", payload(4<<10), UploadOptions{Depots: e.infosFor("A")})
	if err != nil {
		t.Fatal(err)
	}
	now := e.clk.Now()
	e.model.AddDepot(e.depots["A"].Addr(), faultnet.DepotState{
		Site:  "UTK",
		Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(time.Hour)}}},
	})
	if _, err := tl.Augment(x, AugmentOptions{ThirdParty: true, Depots: e.infosFor("B")}); err == nil {
		t.Fatal("third-party augment with no available source should fail")
	}
}
