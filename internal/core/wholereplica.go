package core

import (
	"fmt"
	"sort"

	"repro/internal/exnode"
	"repro/internal/integrity"
	"repro/internal/nws"
)

// DownloadWholeReplica is the strawman the paper's download design is an
// answer to: instead of splitting the file into extents and picking the
// best depot per extent (§2.3), fetch one entire replica from its own
// depots, failing over replica-by-replica. It exists as a baseline for the
// ablation bench: under partial failures, extent-level failover retrieves
// files that whole-replica failover cannot (a file survives when SOME copy
// of every extent is up, even if NO single copy is fully up — exactly the
// paper's Test 3 situation).
func (t *Tools) DownloadWholeReplica(x *exnode.ExNode, opts DownloadOptions) ([]byte, *Report, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, err
	}
	start := t.clock().Now()
	report := &Report{Bytes: x.Size}

	replicas := t.rankReplicas(x)
	var lastErr error
	for _, r := range replicas {
		data, extents, err := t.fetchReplica(x, r, opts)
		if err != nil {
			t.logf("core: whole-replica download: copy %d failed: %v", r, err)
			report.Failovers++
			lastErr = err
			continue
		}
		report.Extents = extents
		report.Duration = t.clock().Since(start)
		data, err = t.unsealRange(x, data, 0, opts)
		if err != nil {
			return nil, report, err
		}
		return data, report, nil
	}
	report.Duration = t.clock().Since(start)
	if lastErr == nil {
		lastErr = exnode.ErrNoCoverage
	}
	return nil, report, fmt.Errorf("core: whole-replica download %q: every copy failed: %w", x.Name, lastErr)
}

// rankReplicas orders replica indices by total forecast bandwidth of their
// fragments (highest first), falling back to index order.
func (t *Tools) rankReplicas(x *exnode.ExNode) []int {
	seen := map[int]bool{}
	var replicas []int
	score := map[int]float64{}
	for _, m := range x.Mappings {
		if !m.IsReplica() {
			continue
		}
		if !seen[m.Replica] {
			seen[m.Replica] = true
			replicas = append(replicas, m.Replica)
		}
		if t.NWS != nil {
			if bw, ok := t.NWS.Forecast(t.Site, m.Read.Addr, nws.Bandwidth); ok {
				score[m.Replica] += bw
			}
		}
	}
	sort.SliceStable(replicas, func(i, j int) bool {
		return score[replicas[i]] > score[replicas[j]]
	})
	return replicas
}

// fetchReplica retrieves every fragment of one replica; any fragment
// failure fails the whole copy (that is the point of the baseline).
func (t *Tools) fetchReplica(x *exnode.ExNode, replica int, opts DownloadOptions) ([]byte, []ExtentReport, error) {
	ms := x.ReplicaMappings(replica)
	if len(ms) == 0 {
		return nil, nil, fmt.Errorf("core: replica %d has no mappings", replica)
	}
	// The replica must cover the whole file.
	var pos int64
	for _, m := range ms {
		if m.Offset > pos {
			return nil, nil, fmt.Errorf("core: replica %d has a gap at %d", replica, pos)
		}
		if m.End() > pos {
			pos = m.End()
		}
	}
	if pos < x.Size {
		return nil, nil, fmt.Errorf("core: replica %d is incomplete", replica)
	}
	buf := make([]byte, x.Size)
	var extents []ExtentReport
	for _, m := range ms {
		data, err := t.IBP.Load(m.Read, 0, m.Length)
		if err != nil {
			return nil, nil, err
		}
		if !opts.SkipVerify && m.Checksum != "" {
			if err := verifyChecksum(data, m.Checksum); err != nil {
				return nil, nil, err
			}
		}
		copy(buf[m.Offset:m.End()], data)
		extents = append(extents, ExtentReport{
			Start: m.Offset, End: m.End(), Depot: m.Depot, Addr: m.Read.Addr, Attempts: 1,
		})
	}
	return buf, extents, nil
}

// verifyChecksum is a tiny indirection so the baseline shares the tools'
// integrity checking.
func verifyChecksum(data []byte, recorded string) error {
	return integrity.Verify(data, recorded)
}
