// Quickstart: the smallest end-to-end use of the Network Storage Stack.
//
// It starts three IBP depots and an in-process L-Bone registry, uploads a
// file as a striped + replicated exNode, prints the exNode XML and the
// xnd_ls listing, and downloads the file back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
)

func main() {
	// 1. Storage owners insert their storage into the network by running
	//    depots (paper §2.1). Here: three in-process depots, 64 MiB each.
	reg := lbone.NewRegistry(0, nil)
	for i, site := range []geo.Site{geo.UTK, geo.UCSD, geo.Harvard} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte(fmt.Sprintf("quickstart-%d", i)),
			Capacity: 64 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		// 2. Depots register with the L-Bone for discovery (paper §2.2).
		reg.Register(lbone.DepotInfo{
			Addr:        d.Addr(),
			Name:        fmt.Sprintf("%s-depot", site.Name),
			Site:        site.Name,
			Loc:         site.Loc,
			Capacity:    64 << 20,
			MaxDuration: 24 * time.Hour,
		})
	}

	// 3. A client at UTK builds the Logistical Tools (paper §2.3).
	tools := &core.Tools{
		IBP:   ibp.NewClient(),
		LBone: core.RegistrySource{Reg: reg},
		Site:  geo.UTK.Name,
		Loc:   geo.UTK.Loc,
	}

	// 4. Upload: stripe into 2 fragments, keep 2 replicas, checksum each
	//    fragment end-to-end.
	data := bytes.Repeat([]byte("logistical networking! "), 4096)
	x, err := tools.Upload("quickstart.dat", data, core.UploadOptions{
		Replicas:  2,
		Fragments: 2,
		Duration:  time.Hour,
		Checksum:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The exNode serializes to XML and can be passed around like a URL.
	xml, err := exnode.Marshal(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exNode for %q (%d bytes, %d replicas):\n%s\n", x.Name, x.Size, x.Replicas(), xml)

	// 6. List shows each segment's availability and metadata.
	fmt.Print(core.FormatList(x.Name, x.Size, tools.List(x)))

	// 7. Download reassembles the file, preferring close depots and
	//    failing over automatically.
	got, rep, err := tools.Download(x, core.DownloadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("quickstart: downloaded bytes differ!")
	}
	fmt.Printf("\ndownloaded %d bytes in %d extents; served by:", rep.Bytes, len(rep.Extents))
	for _, e := range rep.Extents {
		fmt.Printf(" %s[%d:%d]", e.Depot, e.Start, e.End)
	}
	fmt.Println("\nquickstart OK")
}
