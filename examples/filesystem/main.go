// Filesystem: the Logistical File System layer — the top of the stack
// diagram (paper Figure 1), built here on top of exNodes and the tools.
//
// A namespace of directories and files is created over three depots; the
// whole tree is then reconstructed from the root exNode alone, exactly the
// way a capability-like handle should work.
//
// Run with: go run ./examples/filesystem
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/lfs"
)

func main() {
	reg := lbone.NewRegistry(0, nil)
	for i, site := range []geo.Site{geo.UTK, geo.UCSD, geo.Harvard} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte(fmt.Sprintf("fs-%d", i)),
			Capacity: 64 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: site.Name + "-depot", Site: site.Name, Loc: site.Loc,
			Capacity: 64 << 20, MaxDuration: 24 * time.Hour,
		})
	}
	fs := &lfs.FS{
		Tools: &core.Tools{
			IBP:   ibp.NewClient(),
			LBone: core.RegistrySource{Reg: reg},
			Site:  geo.UTK.Name,
			Loc:   geo.UTK.Loc,
		},
		Upload: core.UploadOptions{Replicas: 2, Duration: time.Hour, Checksum: true},
	}

	// Build a namespace:  /README, /papers/ipps02.txt, /papers/drafts/v2.txt
	root := lfs.NewDir()
	if _, err := fs.WriteFile(root, "README", []byte("the network storage stack\n")); err != nil {
		log.Fatal(err)
	}
	papers, err := fs.Mkdir(root, "papers")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.WriteFile(papers, "ipps02.txt", []byte("fault-tolerance in the network storage stack\n")); err != nil {
		log.Fatal(err)
	}
	drafts, err := fs.Mkdir(papers, "drafts")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.WriteFile(drafts, "v2.txt", []byte("second draft\n")); err != nil {
		log.Fatal(err)
	}
	// Persist bottom-up: children first, then the parents that name them.
	if err := fs.SyncDir(papers, "drafts", drafts); err != nil {
		log.Fatal(err)
	}
	if err := fs.SyncDir(root, "papers", papers); err != nil {
		log.Fatal(err)
	}
	rootX, err := fs.SaveDir(root, "root")
	if err != nil {
		log.Fatal(err)
	}
	blob, err := exnode.Marshal(rootX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespace saved; the root handle is %d bytes of exnode XML\n\n", len(blob))

	// A different client reconstructs everything from the root exNode.
	reloaded, err := fs.LoadDir(rootX)
	if err != nil {
		log.Fatal(err)
	}
	walk(fs, reloaded, "")
	data, err := fs.ReadPath(reloaded, "papers/drafts/v2.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread /papers/drafts/v2.txt -> %q\n", data)
}

// walk prints the tree, loading subdirectories from the network.
func walk(fs *lfs.FS, d *lfs.Dir, indent string) {
	for _, name := range d.Names() {
		e, _ := d.Get(name)
		if e.Kind == lfs.KindDir {
			fmt.Printf("%s%s/\n", indent, name)
			child, err := fs.LoadDir(e.ExNode)
			if err != nil {
				log.Fatal(err)
			}
			walk(fs, child, indent+"  ")
		} else {
			fmt.Printf("%s%s (%d bytes, %d mappings)\n", indent, name, e.ExNode.Size, len(e.ExNode.Mappings))
		}
	}
}
