// Routing: moving a file through the network with augment + trim.
//
// The paper (§2.3) describes routing as a composition: "First it is
// augmented so that it has replicas near the desired location, then it is
// trimmed so that the old replicas are deleted." This example stores a
// file at UTK, then routes it to Harvard while a client there watches its
// download time drop, and finally refreshes its time limits.
//
// Run with: go run ./examples/routing
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/vclock"
)

func main() {
	start := time.Date(2002, 1, 11, 15, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(start)
	model := faultnet.NewModel(clk, 3)
	model.SetLocalLink(faultnet.Link{RTT: time.Millisecond, Mbps: 100})
	// A slow transcontinental path makes the routing benefit visible.
	model.SetLink(geo.UTK.Name, geo.Harvard.Name, faultnet.Link{RTT: 40 * time.Millisecond, Mbps: 2})
	reg := lbone.NewRegistry(0, clk.Now)

	for i, site := range []geo.Site{geo.UTK, geo.Harvard} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte(fmt.Sprintf("routing-%d", i)),
			Capacity: 64 << 20,
			Clock:    clk,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		model.AddDepot(d.Addr(), faultnet.DepotState{Site: site.Name})
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: site.Name + "-depot", Site: site.Name, Loc: site.Loc,
			Capacity: 64 << 20, MaxDuration: 24 * time.Hour,
		})
	}

	newTools := func(site geo.Site) *core.Tools {
		return &core.Tools{
			IBP: ibp.NewClient(
				ibp.WithDialer(model.DialerFrom(site.Name)),
				ibp.WithClock(clk),
			),
			LBone: core.RegistrySource{Reg: reg},
			Clock: clk,
			Site:  site.Name,
			Loc:   site.Loc,
		}
	}
	utk := newTools(geo.UTK)
	harvard := newTools(geo.Harvard)

	// A producer at UTK stores the file close to itself.
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 128<<10) // 1 MiB
	near := geo.UTK.Loc
	x, err := utk.Upload("dataset.dat", data, core.UploadOptions{
		Near: &near, Duration: 6 * time.Hour, Checksum: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored at: %s\n", depotsOf(x))

	timeFrom := func(t *core.Tools, who string) {
		got, rep, err := t.Download(x, core.DownloadOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			log.Fatal("mismatch")
		}
		fmt.Printf("download from %-8s %8v  (served by %s)\n",
			who, rep.Duration.Round(time.Millisecond), rep.Extents[0].Depot)
	}
	fmt.Println("\n--- before routing ---")
	timeFrom(utk, "UTK:")
	timeFrom(harvard, "Harvard:")

	// A consumer at Harvard routes the file to itself: augment near
	// Harvard, trim (and delete) the old UTK replica.
	routed, err := harvard.Route(x, geo.Harvard.Loc, core.AugmentOptions{
		Replicas: 1, Duration: 6 * time.Hour, Checksum: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	x = routed
	fmt.Printf("\nrouted to: %s\n", depotsOf(x))
	fmt.Println("\n--- after routing ---")
	timeFrom(utk, "UTK:")
	timeFrom(harvard, "Harvard:")

	// Keep the moved file alive: push every allocation's expiry forward.
	n, err := harvard.Refresh(x, 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefreshed %d segment(s); first now expires %v\n", n, x.Mappings[0].Expires.UTC().Format(time.RFC1123))
}

func depotsOf(x *exnode.ExNode) string {
	seen := map[string]bool{}
	out := ""
	for _, m := range x.Mappings {
		if !seen[m.Depot] {
			seen[m.Depot] = true
			if out != "" {
				out += ", "
			}
			out += m.Depot
		}
	}
	return out
}
