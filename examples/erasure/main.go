// Erasure coding: the paper's §4 future work, implemented.
//
// The same 1.5 MB file is stored twice: once as three full replicas, and
// once as a Reed-Solomon (4,2) coding group — 50 % storage overhead
// instead of 200 %. Depots are then killed two at a time; the RS exNode
// keeps decoding from any four surviving blocks, while replication is
// compared on storage cost. An XOR-parity (RAID-5 style) variant is shown
// last.
//
// Run with: go run ./examples/erasure
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/vclock"
)

func main() {
	start := time.Date(2002, 1, 11, 15, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(start)
	model := faultnet.NewModel(clk, 2)
	model.SetLocalLink(faultnet.Link{RTT: time.Millisecond, Mbps: 100})
	reg := lbone.NewRegistry(0, clk.Now)

	// Six depots, all at UTK for simplicity.
	var names []string
	depots := map[string]*depot.Depot{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("D%d", i+1)
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte("erasure-" + name),
			Capacity: 64 << 20,
			Clock:    clk,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		model.AddDepot(d.Addr(), faultnet.DepotState{Site: geo.UTK.Name})
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: name, Site: geo.UTK.Name, Loc: geo.UTK.Loc,
			Capacity: 64 << 20, MaxDuration: 24 * time.Hour,
		})
		names = append(names, name)
		depots[name] = d
	}

	tools := &core.Tools{
		IBP: ibp.NewClient(
			ibp.WithDialer(model.DialerFrom(geo.UTK.Name)),
			ibp.WithClock(clk),
			ibp.WithDialTimeout(time.Second),
		),
		LBone: core.RegistrySource{Reg: reg},
		Clock: clk,
		Site:  geo.UTK.Name,
		Loc:   geo.UTK.Loc,
	}

	data := bytes.Repeat([]byte("reed-solomon "), 115_000) // ~1.5 MB
	stored := func(x *exnode.ExNode) int64 {
		var total int64
		for _, m := range x.Mappings {
			if m.IsReplica() {
				total += m.Length
			} else {
				total += m.BlockSize
			}
		}
		return total
	}

	// Full replication: 3 copies = 200 % overhead, tolerates 2 losses.
	replicated, err := tools.Upload("replicated", data, core.UploadOptions{
		Replicas: 3, Checksum: true, Duration: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	// RS(4,2): 50 % overhead, also tolerates any 2 losses.
	coded, err := tools.UploadRS("rs-coded", data, core.CodedOptions{
		DataBlocks: 4, ParityBlocks: 2, Checksum: true, Duration: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	// XOR parity (RAID-5): 25 % overhead with k=4, tolerates 1 loss.
	xorNode, err := tools.UploadXOR("xor-coded", data, core.CodedOptions{
		DataBlocks: 4, Checksum: true, Duration: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	overhead := func(x *exnode.ExNode) float64 {
		return 100 * float64(stored(x)-int64(len(data))) / float64(len(data))
	}
	fmt.Printf("file size: %d bytes\n", len(data))
	fmt.Printf("replication (3 copies): stores %d bytes (%3.0f%% overhead), tolerates 2 losses\n",
		stored(replicated), overhead(replicated))
	fmt.Printf("Reed-Solomon (4,2):     stores %d bytes (%3.0f%% overhead), tolerates 2 losses\n",
		stored(coded), overhead(coded))
	fmt.Printf("XOR parity (4+1):       stores %d bytes (%3.0f%% overhead), tolerates 1 loss\n",
		stored(xorNode), overhead(xorNode))

	check := func(label string, x *exnode.ExNode) {
		got, rep, err := tools.Download(x, core.DownloadOptions{})
		switch {
		case err != nil:
			fmt.Printf("  %-22s FAILED: %v\n", label, err)
		case !bytes.Equal(got, data):
			log.Fatalf("%s: decode mismatch", label)
		default:
			coded := ""
			if rep.Extents[0].Coded {
				coded = " (decoded from coding blocks)"
			}
			fmt.Printf("  %-22s OK%s\n", label, coded)
		}
	}
	kill := func(victim string) {
		now := clk.Now()
		model.AddDepot(depots[victim].Addr(), faultnet.DepotState{
			Site:  geo.UTK.Name,
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(100 * time.Hour)}}},
		})
		fmt.Printf("\n>> depot %s is now DOWN\n", victim)
	}

	fmt.Println("\n--- all depots up ---")
	check("replication (3x):", replicated)
	check("Reed-Solomon (4,2):", coded)
	check("XOR parity (4+1):", xorNode)

	kill(names[0])
	check("replication (3x):", replicated)
	check("Reed-Solomon (4,2):", coded)
	check("XOR parity (4+1):", xorNode)

	kill(names[1])
	check("replication (3x):", replicated)
	check("Reed-Solomon (4,2):", coded)
	check("XOR parity (4+1):", xorNode)
}
