// Encryption: sealed storage on untrusted depots (the paper's §4 future
// work: "unencrypted data does not have to travel over the network, or be
// stored by IBP servers").
//
// A file is sealed with AES-256-CTR before upload; the depots, the wire,
// and even the Augment tool only ever see ciphertext. The exNode carries
// the cipher metadata; the key travels out of band. Range downloads
// decrypt just the bytes they fetch.
//
// Run with: go run ./examples/encrypted
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/sealing"
)

func main() {
	reg := lbone.NewRegistry(0, nil)
	for i, site := range []geo.Site{geo.UTK, geo.UCSD} {
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte(fmt.Sprintf("encrypted-%d", i)),
			Capacity: 64 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: site.Name + "-depot", Site: site.Name, Loc: site.Loc,
			Capacity: 64 << 20, MaxDuration: 24 * time.Hour,
		})
	}
	tools := &core.Tools{
		IBP:   ibp.NewClient(),
		LBone: core.RegistrySource{Reg: reg},
		Site:  geo.UTK.Name,
		Loc:   geo.UTK.Loc,
	}

	key := sealing.DeriveKey("a passphrase shared out of band")
	secret := bytes.Repeat([]byte("TOP SECRET DATA "), 8192) // 128 KiB

	x, err := tools.Upload("classified.dat", secret, core.UploadOptions{
		Replicas:      2,
		EncryptionKey: key,
		Checksum:      true, // digests cover ciphertext: verifiable without the key
		Duration:      time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d bytes sealed with %s (iv %s...)\n", len(secret), x.Cipher, x.IV[:8])

	// What a depot actually holds:
	raw, err := tools.IBP.Load(x.Mappings[0].Read, 0, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first 32 bytes on the depot:  %q\n", raw)
	fmt.Printf("first 32 bytes of the secret: %q\n\n", secret[:32])

	// Keyless download is refused client-side.
	if _, _, err := tools.Download(x, core.DownloadOptions{}); err != nil {
		fmt.Printf("download without key: %v\n", err)
	}

	// A range download decrypts only what it fetched.
	got, _, err := tools.DownloadRange(x, 16, 15, core.DownloadOptions{DecryptionKey: key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range [16,31) with key: %q\n", got)

	// The exNode XML shows what an eavesdropper learns: capabilities and
	// cipher name, nothing decryptable.
	blob, err := exnode.Marshal(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexnode is %d bytes of XML; contains plaintext? %v\n",
		len(blob), bytes.Contains(blob, []byte("TOP SECRET")))

	// Full round trip.
	all, _, err := tools.Download(x, core.DownloadOptions{DecryptionKey: key})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(all, secret) {
		log.Fatal("round trip mismatch")
	}
	fmt.Println("full decrypt round trip OK")
}
