// Replication: fault-tolerant downloads from a striped, replicated exNode.
//
// A 2 MB file is striped across depots at four sites with three replicas.
// The example then kills depots one by one (through the faultnet WAN
// simulator) and keeps downloading: the download tool fails over between
// replicas per extent, exactly as in the paper's Tests 2 and 3. When every
// replica of an extent is gone, the download finally fails — and a List
// shows which segments died.
//
// Run with: go run ./examples/replication
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/depot"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/vclock"
)

func main() {
	start := time.Date(2002, 1, 11, 15, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(start)
	model := faultnet.NewModel(clk, 1)
	model.SetLocalLink(faultnet.Link{RTT: time.Millisecond, Mbps: 100})
	model.SetDefaultLink(faultnet.Link{RTT: 40 * time.Millisecond, Mbps: 10})
	reg := lbone.NewRegistry(0, clk.Now)

	sites := []geo.Site{geo.UTK, geo.UCSD, geo.UCSB, geo.Harvard}
	depots := map[string]*depot.Depot{}
	for i, site := range sites {
		name := site.Name + "-depot"
		d, err := depot.Serve("127.0.0.1:0", depot.Config{
			Secret:   []byte(fmt.Sprintf("replication-%d", i)),
			Capacity: 64 << 20,
			Clock:    clk,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		model.AddDepot(d.Addr(), faultnet.DepotState{Site: site.Name})
		reg.Register(lbone.DepotInfo{
			Addr: d.Addr(), Name: name, Site: site.Name, Loc: site.Loc,
			Capacity: 64 << 20, MaxDuration: 24 * time.Hour,
		})
		depots[name] = d
	}

	tools := &core.Tools{
		IBP: ibp.NewClient(
			ibp.WithDialer(model.DialerFrom(geo.UTK.Name)),
			ibp.WithClock(clk),
			ibp.WithDialTimeout(2*time.Second),
		),
		LBone: core.RegistrySource{Reg: reg},
		Clock: clk,
		Site:  geo.UTK.Name,
		Loc:   geo.UTK.Loc,
	}

	data := bytes.Repeat([]byte{0xA5, 0x5A, 0x33, 0xCC}, 512<<10)
	x, err := tools.Upload("replicated.dat", data, core.UploadOptions{
		Replicas:  3,
		Fragments: 4,
		Duration:  12 * time.Hour,
		Checksum:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d bytes: %d replicas x 4 fragments across %d sites\n\n",
		len(data), x.Replicas(), len(sites))

	kill := func(name string, site geo.Site) {
		now := clk.Now()
		model.AddDepot(depots[name].Addr(), faultnet.DepotState{
			Site:  site.Name,
			Avail: faultnet.Windows{Down: []faultnet.Window{{From: now, To: now.Add(100 * time.Hour)}}},
		})
		fmt.Printf(">> depot %s is now DOWN\n", name)
	}

	tryDownload := func() {
		got, rep, err := tools.Download(x, core.DownloadOptions{})
		if err != nil {
			fmt.Printf("download FAILED: %v\n", err)
			fmt.Printf("availability now: %.0f%%\n\n", core.Availability(tools.List(x)))
			return
		}
		if !bytes.Equal(got, data) {
			log.Fatal("data corruption!")
		}
		fmt.Printf("download OK in %v with %d failovers; path:",
			rep.Duration.Round(time.Millisecond), rep.Failovers)
		for _, e := range rep.Extents {
			fmt.Printf(" %s", e.Depot)
		}
		fmt.Printf("\navailability now: %.0f%%\n\n", core.Availability(tools.List(x)))
	}

	fmt.Println("--- all depots up ---")
	tryDownload()

	kill("UTK-depot", geo.UTK)
	tryDownload()

	kill("UCSD-depot", geo.UCSD)
	tryDownload()

	kill("UCSB-depot", geo.UCSB)
	tryDownload()

	// With three of four depots dead, some extent has lost every replica.
	kill("HARVARD-depot", geo.Harvard)
	tryDownload()
}
