// Command nws-server runs a Network Weather Service daemon: sensors
// RECORD bandwidth/latency measurements, clients request FORECASTs that
// the Logistical Tools use to pick download sources (paper §2.2).
//
// Usage:
//
//	nws-server -listen :6770 -history 512
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/nws"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:6770", "address to listen on")
		history = flag.Int("history", 512, "raw measurements retained per series")
	)
	flag.Parse()

	svc := nws.NewService(nil, *history)
	s, err := nws.ServeNWS(*listen, svc, log.New(os.Stderr, "nws: ", log.LstdFlags))
	if err != nil {
		log.Fatalf("nws-server: %v", err)
	}
	log.Printf("nws-server: listening on %s", s.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("nws-server: shutting down")
	if err := s.Close(); err != nil {
		log.Fatalf("nws-server: close: %v", err)
	}
}
