// Command nws-server runs a Network Weather Service daemon: sensors
// RECORD bandwidth/latency measurements, clients request FORECASTs that
// the Logistical Tools use to pick download sources (paper §2.2).
//
// Usage:
//
//	nws-server -listen :6770 -history 512
package main

import (
	"flag"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/nws"
	"repro/internal/obs"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:6770", "address to listen on")
		history = flag.Int("history", 512, "raw measurements retained per series")
		logJSON = flag.Bool("log-json", false, "emit structured logs as JSON (default: human-readable text)")
	)
	flag.Parse()

	svc := nws.NewService(nil, *history)
	logger := obs.NewLogger(obs.LogConfig{JSON: *logJSON, Component: "nws-server"})
	s, err := nws.ServeNWS(*listen, svc, logger)
	if err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "addr", s.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	if err := s.Close(); err != nil {
		logger.Error("close", "err", err)
		os.Exit(1)
	}
}
