// Command xnd is the Logistical Tools CLI (paper §2.3): upload local data
// into network storage as a striped, replicated exNode; download, list,
// refresh, augment, trim and route exNode files; query depot status.
//
// Examples:
//
//	xnd upload  -lbone host:6767 -replicas 3 -fragments 4 -o file.xnd file.dat
//	xnd download -o file.dat file.xnd
//	xnd download -hedge -readahead 4 -o file.dat file.xnd
//	xnd ls file.xnd
//	xnd refresh -duration 240h file.xnd
//	xnd augment -lbone host:6767 -near UCSD -o file2.xnd file.xnd
//	xnd trim -expired -o file2.xnd file.xnd
//	xnd dir put -lbone h1:6767,h2:6767,h3:6767 files/report file.xnd
//	xnd dir get -lbone h1:6767,h2:6767,h3:6767 -o file.xnd files/report
//	xnd status host:6714
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exnode"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/nws"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/sealing"
	"repro/internal/slo"
	"repro/internal/transfer"
)

// traceOn enables the global --trace flag: every IBP operation is recorded
// by an obs.Collector and dumped (with per-transfer timelines) on exit.
// Commands that support cross-layer tracing additionally mint rootSpan, and
// every layer below — core extents, transfer hedges, IBP client ops, depot
// server spans — hangs its events off it; dumpTrace then renders the joined
// timeline.
var (
	traceOn  bool
	traceCol *obs.Collector
	rootSpan obs.SpanContext
)

// The always-on observability plane: every invocation keeps a flight
// recorder of recent log records and IBP/hedge/breaker events, feeds an
// SLO engine, and tracks NWS forecast error. On failure the recorder is
// cut into a postmortem bundle (written to -postmortem-dir or
// $XND_POSTMORTEM_DIR when set).
var (
	logJSON       bool
	postmortemDir string
	recorder      *obs.FlightRecorder
	forecasts     *obs.ForecastTracker
	sloEngine     *slo.Engine
	logger        *slog.Logger
	lastTools     *core.Tools
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xnd: ")
	args := stripGlobalFlags(os.Args[1:])
	if postmortemDir == "" {
		postmortemDir = os.Getenv("XND_POSTMORTEM_DIR")
	}
	recorder = obs.NewFlightRecorder(0)
	forecasts = obs.NewForecastTracker(recorder)
	logger = obs.NewLogger(obs.LogConfig{JSON: logJSON, Component: "xnd", Recorder: recorder})
	sloEngine = slo.New(slo.Config{
		Objectives: slo.DefaultObjectives(),
		Logger:     logger,
		Recorder:   recorder,
	})
	if len(args) < 1 {
		usage()
	}
	cmd, args := args[0], args[1:]
	var err error
	switch cmd {
	case "upload":
		err = cmdUpload(args)
	case "download":
		err = cmdDownload(args)
	case "ls":
		err = cmdLs(args)
	case "refresh":
		err = cmdRefresh(args)
	case "augment":
		err = cmdAugment(args)
	case "trim":
		err = cmdTrim(args)
	case "route":
		err = cmdRoute(args)
	case "verify":
		err = cmdVerify(args)
	case "maintain":
		err = cmdMaintain(args)
	case "dir":
		err = cmdDir(args)
	case "status":
		err = cmdStatus(args)
	case "health":
		err = cmdHealth(args)
	case "metrics":
		err = cmdMetrics(args)
	case "slo":
		err = cmdSlo(args)
	default:
		usage()
	}
	dumpTrace()
	if err != nil {
		cutPostmortem(err)
		log.Fatal(err)
	}
}

// stripGlobalFlags removes whole-invocation flags anywhere on the command
// line (they are modes of the run, not of one subcommand): -trace,
// -log-json, and -postmortem-dir DIR (or -postmortem-dir=DIR).
func stripGlobalFlags(args []string) []string {
	out := args[:0:0]
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, hasVal := strings.Cut(strings.TrimPrefix(a, "-"), "=")
		switch "-" + strings.TrimPrefix(name, "-") {
		case "-trace":
			traceOn = true
			continue
		case "-log-json":
			logJSON = true
			continue
		case "-postmortem-dir":
			if hasVal {
				postmortemDir = val
			} else if i+1 < len(args) {
				i++
				postmortemDir = args[i]
			}
			continue
		}
		out = append(out, a)
	}
	return out
}

// cutPostmortem stores and (when a directory is configured) writes a
// postmortem bundle for a failed invocation: the flight-recorder timeline,
// breaker snapshots, and the forecast-error samples for the depots the
// command touched.
func cutPostmortem(cmdErr error) {
	if recorder == nil {
		return
	}
	b := obs.Bundle{
		Reason:      "nonzero-exit",
		Component:   "xnd",
		CreatedAt:   time.Now(),
		Err:         cmdErr.Error(),
		Entries:     recorder.Recent(0),
		RingDropped: recorder.Dropped(),
	}
	if rootSpan.Valid() {
		b.Trace = rootSpan.TraceID
	}
	if lastTools != nil && lastTools.Health != nil {
		for _, d := range lastTools.Health.Snapshot() {
			b.Breakers = append(b.Breakers, obs.BreakerSnap{
				Addr: d.Addr, State: d.State.String(), Score: d.Score,
				Trips: int64(d.Trips), Reclosed: d.Reclosed, RetryAt: d.RetryAt,
			})
		}
	}
	if forecasts != nil {
		b.Forecasts = forecasts.RecentFor(b.Depots())
	}
	recorder.StoreBundle(b)
	if postmortemDir == "" {
		return
	}
	path, err := obs.WriteBundle(postmortemDir, b)
	if err != nil {
		log.Printf("postmortem: %v", err)
		return
	}
	log.Printf("postmortem bundle written to %s", path)
}

// dumpTrace prints the recorded operation events and per-depot aggregates
// to stderr. It runs on success AND on failure — traces of failed
// transfers are the ones worth reading.
func dumpTrace() {
	if traceCol == nil || traceCol.Total() == 0 {
		return
	}
	if rootSpan.Valid() {
		fmt.Fprintf(os.Stderr, "\n--- joined timeline (trace %s) ---\n", rootSpan.TraceID)
		fmt.Fprint(os.Stderr, traceCol.RenderTrace(rootSpan.TraceID))
	}
	fmt.Fprint(os.Stderr, "\n--- operation trace ---\n")
	fmt.Fprint(os.Stderr, traceCol.RenderEvents(50))
	fmt.Fprint(os.Stderr, "\n--- per-depot aggregates ---\n")
	fmt.Fprint(os.Stderr, traceCol.Render())
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xnd [--trace] <command> [flags]

commands:
  upload    store a local file into the network, emitting an exnode
  download  reassemble a file from an exnode
  ls        list an exnode's segments with availability and metadata
  refresh   extend the time limits of an exnode's allocations
  augment   add replicas to an exnode
  trim      remove fragments from an exnode
  route     move a file toward a new location (augment + trim)
  verify    audit every segment's availability and checksum
  maintain  refresh, trim dead segments, and repair lost redundancy
  dir       publish/fetch/list exnodes in the replicated registry directory
  status    query a depot's capacity and limits
  health    probe depots and print the health scoreboard
  metrics   fetch a depot's operation counters (METRICS verb)
  slo       render SLO status: local objectives, or a daemon's /slo endpoint

--trace records every IBP operation and prints per-transfer timelines
(including failed attempts) plus per-depot latency aggregates to stderr.
--log-json switches structured logs from human text to JSON lines.
--postmortem-dir DIR (or $XND_POSTMORTEM_DIR) writes a postmortem bundle
(flight-recorder timeline, breaker states, forecast errors) on failure.`)
	os.Exit(2)
}

// commonFlags holds flags shared by the tools.
type commonFlags struct {
	fs          *flag.FlagSet
	lbone       *string
	site        *string
	timeout     *time.Duration
	useNWS      *bool
	nwsServer   *string
	hedge       *bool
	hedgeAfter  *time.Duration
	maxPerDepot *int
	metricsAddr *string
	pprofOn     *bool
}

func newFlags(name string) *commonFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &commonFlags{
		fs:          fs,
		lbone:       fs.String("lbone", os.Getenv("XND_LBONE"), "L-Bone server address (or $XND_LBONE)"),
		site:        fs.String("site", envOr("XND_SITE", "UTK"), "client site name for proximity/NWS (or $XND_SITE)"),
		timeout:     fs.Duration("timeout", 30*time.Second, "per-operation timeout"),
		useNWS:      fs.Bool("nws", true, "keep a local NWS to guide downloads"),
		nwsServer:   fs.String("nws-server", os.Getenv("XND_NWS"), "remote NWS daemon address (or $XND_NWS; overrides -nws)"),
		hedge:       fs.Bool("hedge", false, "hedge slow extent fetches against the next-ranked replica"),
		hedgeAfter:  fs.Duration("hedge-after", 0, "fixed hedging threshold (0 = adapt from the health scoreboard)"),
		maxPerDepot: fs.Int("max-per-depot", 4, "concurrent operations allowed per depot"),
		metricsAddr: fs.String("metrics-listen", "", "serve transfer-engine /metrics over HTTP on this address while the command runs (empty = off)"),
		pprofOn:     fs.Bool("pprof", false, "also serve /debug/pprof on the metrics listener"),
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// tools builds the Logistical Tools client from common flags. Every
// command shares one health scoreboard between the IBP client (which
// reports outcomes and consults the breaker) and the tools (which rank
// and place around open circuits).
func (c *commonFlags) tools() (*core.Tools, error) {
	site, ok := geo.LookupSite(*c.site)
	if !ok {
		return nil, fmt.Errorf("unknown site %q", *c.site)
	}
	sb := health.New(health.Config{
		// Breaker transitions land in the flight recorder so a postmortem
		// bundle shows when each depot's circuit opened and re-closed.
		OnTransition: func(addr string, from, to health.State, at time.Time) {
			recorder.BreakerTransition(addr, from.String(), to.String(), at)
		},
	})
	opts := []ibp.Option{ibp.WithOpTimeout(*c.timeout), ibp.WithHealth(sb)}
	// Every IBP op feeds the flight recorder and the SLO engine; the trace
	// collector joins in only under --trace. (A nil *Collector must not
	// reach Tee as a typed-nil Observer, so it is added conditionally.)
	tees := []obs.Observer{recorder, slo.ObserveIBP(sloEngine)}
	if traceOn {
		traceCol = obs.NewCollector(obs.DefaultRingSize)
		tees = append(tees, traceCol)
	}
	observer := obs.Tee(tees...)
	opts = append(opts, ibp.WithObserver(observer))
	t := &core.Tools{
		IBP:      ibp.NewClient(opts...),
		Site:     site.Name,
		Loc:      site.Loc,
		Health:   sb,
		Logger:   logger,
		Forecast: forecasts,
	}
	lastTools = t
	if *c.lbone != "" {
		if addrs := lbone.SplitAddrs(*c.lbone); len(addrs) > 1 {
			// A comma-separated -lbone is a replica group: discovery and
			// the exNode directory go through majority quorums, and every
			// per-replica outcome feeds the registry-availability SLI.
			qc := registry.NewQuorumClient(*c.lbone,
				registry.WithTimeouts(5*time.Second, *c.timeout),
				registry.WithObserver(slo.ObserveRegistry(sloEngine)))
			t.LBone = qc
			t.Directory = registry.NewDirectory(qc)
		} else {
			t.LBone = lbone.NewClient(*c.lbone)
		}
	}
	switch {
	case *c.nwsServer != "":
		t.NWS = nws.NewRemote(*c.nwsServer)
	case *c.useNWS:
		t.NWS = nws.NewService(nil, 256)
	}
	// The transfer engine always runs (its per-depot limiter and coded
	// singleflight are pure wins); -hedge additionally arms backup requests.
	engCfg := transfer.Config{
		Hedge:       *c.hedge,
		HedgeAfter:  *c.hedgeAfter,
		MaxPerDepot: *c.maxPerDepot,
		Health:      sb,
		Logger:      logger,
		// Hedge launches/wins/cancellations join the same event stream as
		// the IBP ops, so traced downloads show the racing attempts and
		// the flight recorder keeps them for postmortems.
		Observer: observer,
	}
	if src := t.NWS; src != nil {
		engCfg.Forecast = func(addr string) (float64, bool) {
			return src.Forecast(site.Name, addr, nws.Bandwidth)
		}
	}
	t.Transfer = transfer.New(engCfg)
	if *c.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.MetricsHandler(func() []obs.Metric {
			ms := t.Transfer.Metrics("xnd_transfer_")
			if traceCol != nil {
				ms = append(ms, traceCol.CollectorMetrics("xnd_ibp_")...)
			}
			ms = append(ms, forecasts.Metrics()...)
			ms = append(ms, sloEngine.Metrics()...)
			return append(ms, obs.RuntimeMetrics()...)
		}))
		mux.Handle("/slo", sloEngine.Handler())
		mux.Handle("/postmortem/", obs.PostmortemHandler(recorder, "xnd", time.Now))
		if *c.pprofOn {
			obs.AttachPprof(mux)
		}
		go func() {
			if err := http.ListenAndServe(*c.metricsAddr, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}
	return t, nil
}

func readExnode(path string) (*exnode.ExNode, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return exnode.Unmarshal(data)
}

func writeExnode(path string, x *exnode.ExNode) error {
	data, err := exnode.Marshal(x)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// cmdDir manipulates the replicated exNode directory: put publishes an
// exnode file under a name, get fetches it back, ls lists names with
// their current versions. It always speaks the quorum protocol, so
// -lbone must point at lbone-server(s) started with -replicas (a single
// address is a legal one-member group).
func cmdDir(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: xnd dir put|get|ls [flags]")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("dir "+sub, flag.ExitOnError)
	lboneAddr := fs.String("lbone", os.Getenv("XND_LBONE"), "replica group addresses, comma-separated (or $XND_LBONE)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-operation timeout")
	prev := fs.Int64("prev", 0, "put: version being replaced (0 = new name; pass the version get printed)")
	out := fs.String("o", "-", "get: output exnode path (- = stdout)")
	fs.Parse(args)
	if *lboneAddr == "" {
		return fmt.Errorf("dir needs -lbone (or $XND_LBONE) pointing at a replica group")
	}
	qc := registry.NewQuorumClient(*lboneAddr,
		registry.WithTimeouts(5*time.Second, *timeout),
		registry.WithObserver(slo.ObserveRegistry(sloEngine)))
	dir := registry.NewDirectory(qc)
	switch sub {
	case "put":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: xnd dir put [-prev N] NAME FILE.xnd")
		}
		name := fs.Arg(0)
		x, err := readExnode(fs.Arg(1))
		if err != nil {
			return err
		}
		version, err := dir.PutExNode(name, x, *prev)
		if err != nil {
			return err
		}
		fmt.Printf("%s v%d\n", name, version)
		return nil
	case "get":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: xnd dir get [-o FILE] NAME")
		}
		x, version, err := dir.GetExNode(fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s v%d\n", fs.Arg(0), version)
		return writeExnode(*out, x)
	case "ls":
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: xnd dir ls")
		}
		entries, err := dir.ListExNodes()
		if err != nil {
			return err
		}
		for _, e := range entries {
			fmt.Printf("v%-6d %s\n", e.Version, e.Name)
		}
		return nil
	default:
		return fmt.Errorf("unknown dir subcommand %q (want put, get or ls)", sub)
	}
}

func cmdUpload(args []string) error {
	c := newFlags("upload")
	replicas := c.fs.Int("replicas", 1, "number of full copies")
	fragments := c.fs.Int("fragments", 1, "fragments per copy (striping)")
	duration := c.fs.Duration("duration", core.DefaultDuration, "allocation lifetime")
	checksum := c.fs.Bool("checksum", true, "record per-fragment SHA-256 digests")
	near := c.fs.String("near", "", "place fragments near this site")
	rs := c.fs.String("rs", "", "Reed-Solomon coding as k,m (e.g. 4,2) instead of replication")
	pass := c.fs.String("encrypt-pass", "", "seal the file with AES-256-CTR under this passphrase")
	placement := c.fs.String("placement", "rotate", "depot assignment: rotate|site-diverse")
	parallel := c.fs.Int("parallel", 1, "concurrent fragment uploads")
	out := c.fs.String("o", "-", "output exnode path (- = stdout)")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("upload wants exactly one input file")
	}
	data, err := os.ReadFile(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	var x *exnode.ExNode
	if *rs != "" {
		k, m, err := parseKM(*rs)
		if err != nil {
			return err
		}
		x, err = t.UploadRS(c.fs.Arg(0), data, core.CodedOptions{
			DataBlocks: k, ParityBlocks: m,
			Duration: *duration, Checksum: *checksum,
		})
		if err != nil {
			return err
		}
	} else {
		opts := core.UploadOptions{
			Replicas:  *replicas,
			Fragments: *fragments,
			Duration:  *duration,
			Checksum:  *checksum,
		}
		if *pass != "" {
			opts.EncryptionKey = sealing.DeriveKey(*pass)
		}
		opts.Parallelism = *parallel
		switch *placement {
		case "rotate":
		case "site-diverse":
			opts.Placement = core.PlacementSiteDiverse
		default:
			return fmt.Errorf("unknown placement %q", *placement)
		}
		if *near != "" {
			s, ok := geo.LookupSite(*near)
			if !ok {
				return fmt.Errorf("unknown site %q", *near)
			}
			opts.Near = &s.Loc
		}
		rep := &core.UploadReport{}
		if traceOn {
			opts.Report = rep
		}
		x, err = t.Upload(c.fs.Arg(0), data, opts)
		if traceOn && len(rep.Fragments) > 0 {
			fmt.Fprint(os.Stderr, "--- upload timeline ---\n", rep.Timeline())
		}
		if err != nil {
			return err
		}
	}
	log.Printf("uploaded %d bytes as %d mappings", len(data), len(x.Mappings))
	return writeExnode(*out, x)
}

func parseKM(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -rs %q, want k,m", s)
	}
	k, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -rs %q, want k,m", s)
	}
	return k, m, nil
}

func cmdDownload(args []string) error {
	c := newFlags("download")
	out := c.fs.String("o", "-", "output file (- = stdout)")
	offset := c.fs.Int64("offset", 0, "range start")
	length := c.fs.Int64("length", -1, "range length (-1 = to end)")
	parallel := c.fs.Int("parallel", 1, "concurrent extent fetchers")
	readahead := c.fs.Int("readahead", 0, "stream the download, prefetching this many extents ahead (0 = whole-range download)")
	strategy := c.fs.String("strategy", "auto", "depot ranking: auto|nws|static|random")
	pass := c.fs.String("decrypt-pass", "", "passphrase for encrypted exnodes")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("download wants exactly one exnode")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	n := *length
	if n < 0 {
		n = x.Size - *offset
	}
	dlOpts := core.DownloadOptions{
		Strategy:    strat,
		Parallelism: *parallel,
		Readahead:   *readahead,
	}
	if *pass != "" {
		dlOpts.DecryptionKey = sealing.DeriveKey(*pass)
	}
	if traceOn {
		// Root of the cross-layer trace: core extents, transfer hedges, IBP
		// ops and depot server spans all hang below this span.
		rootSpan = obs.NewRootSpan()
		dlOpts.Span = rootSpan
	}
	note := fmt.Sprintf("%s [%d,%d)", c.fs.Arg(0), *offset, *offset+n)
	start := time.Now()
	if *readahead > 0 {
		// Streaming mode: bytes flow to the output as extents arrive, with
		// memory bounded at readahead+1 extents instead of the whole range.
		err := streamDownload(t, x, *offset, n, dlOpts, *out)
		recordRoot(start, note, n, err)
		return err
	}
	data, rep, err := t.DownloadRange(x, *offset, n, dlOpts)
	recordRoot(start, note, n, err)
	if traceOn && rep != nil {
		fmt.Fprint(os.Stderr, "--- download timeline ---\n", rep.Timeline())
	}
	if err != nil {
		return err
	}
	log.Printf("downloaded %d bytes in %v (%d extents, %d failovers)",
		rep.Bytes, rep.Duration.Round(time.Millisecond), len(rep.Extents), rep.Failovers)
	if *out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// recordRoot closes the trace's root span: one DOWNLOAD event spanning the
// whole command, which every extent span names as its parent.
func recordRoot(start time.Time, note string, bytes int64, err error) {
	if traceCol == nil || !rootSpan.Valid() {
		return
	}
	ev := obs.Event{
		Time: start, Verb: "DOWNLOAD", Latency: time.Since(start),
		Trace: rootSpan.TraceID, Span: rootSpan.SpanID,
		Note: note, Outcome: "ok",
	}
	if err != nil {
		ev.Outcome = "error"
		ev.Err = err.Error()
	} else {
		ev.Bytes = bytes
	}
	traceCol.Record(ev)
}

// streamDownload copies a ranged download to its destination through the
// streaming reader (xnd download -readahead N).
func streamDownload(t *core.Tools, x *exnode.ExNode, offset, length int64, opts core.DownloadOptions, out string) error {
	r, rep, err := t.OpenRangeReader(x, offset, length, opts)
	if err != nil {
		return err
	}
	defer r.Close()
	dst := io.Writer(os.Stdout)
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	_, err = io.Copy(dst, r)
	if traceOn && rep != nil {
		fmt.Fprint(os.Stderr, "--- download timeline ---\n", rep.Timeline())
	}
	if err != nil {
		return err
	}
	log.Printf("streamed %d bytes in %v (%d extents, %d failovers)",
		rep.Bytes, rep.Duration.Round(time.Millisecond), len(rep.Extents), rep.Failovers)
	return nil
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "auto":
		return core.StrategyAuto, nil
	case "nws":
		return core.StrategyNWS, nil
	case "static":
		return core.StrategyStatic, nil
	case "random":
		return core.StrategyRandom, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func cmdLs(args []string) error {
	c := newFlags("ls")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("ls wants exactly one exnode")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	entries := t.List(x)
	fmt.Print(core.FormatList(x.Name, x.Size, entries))
	fmt.Printf("segment availability now: %.2f%%\n", core.Availability(entries))
	return nil
}

func cmdRefresh(args []string) error {
	c := newFlags("refresh")
	duration := c.fs.Duration("duration", core.DefaultDuration, "new lifetime from now")
	out := c.fs.String("o", "", "write the updated exnode here (default: in place)")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("refresh wants exactly one exnode")
	}
	path := c.fs.Arg(0)
	x, err := readExnode(path)
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	n, err := t.Refresh(x, *duration)
	log.Printf("refreshed %d of %d segments", n, len(x.Mappings))
	if err != nil {
		log.Printf("warning: %v", err)
	}
	if *out == "" {
		*out = path
	}
	return writeExnode(*out, x)
}

func cmdAugment(args []string) error {
	c := newFlags("augment")
	replicas := c.fs.Int("replicas", 1, "copies to add")
	fragments := c.fs.Int("fragments", 1, "fragments per new copy")
	near := c.fs.String("near", "", "place new copies near this site")
	thirdParty := c.fs.Bool("third-party", false, "replicate with depot-to-depot COPY (data never passes through this client)")
	out := c.fs.String("o", "-", "output exnode path")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("augment wants exactly one exnode")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	opts := core.AugmentOptions{Replicas: *replicas, Fragments: *fragments, ThirdParty: *thirdParty}
	if *near != "" {
		s, ok := geo.LookupSite(*near)
		if !ok {
			return fmt.Errorf("unknown site %q", *near)
		}
		opts.Near = &s.Loc
	}
	aug, err := t.Augment(x, opts)
	if err != nil {
		return err
	}
	log.Printf("augmented to %d replicas, %d mappings", aug.Replicas(), len(aug.Mappings))
	return writeExnode(*out, aug)
}

func cmdTrim(args []string) error {
	c := newFlags("trim")
	indices := c.fs.String("segments", "", "comma-separated mapping indices to remove")
	expired := c.fs.Bool("expired", false, "remove expired mappings")
	replica := c.fs.Int("replica", -1, "remove this replica index entirely")
	deleteIBP := c.fs.Bool("delete", false, "also delete the byte arrays from their depots")
	out := c.fs.String("o", "-", "output exnode path")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("trim wants exactly one exnode")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	opts := core.TrimOptions{Expired: *expired, DeleteFromIBP: *deleteIBP}
	if *indices != "" {
		for _, part := range strings.Split(*indices, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad segment index %q", part)
			}
			opts.Indices = append(opts.Indices, i)
		}
	}
	if *replica >= 0 {
		opts.Replica = replica
	}
	trimmed, err := t.Trim(x, opts)
	if err != nil {
		return err
	}
	log.Printf("trimmed %d -> %d mappings", len(x.Mappings), len(trimmed.Mappings))
	return writeExnode(*out, trimmed)
}

func cmdRoute(args []string) error {
	c := newFlags("route")
	to := c.fs.String("to", "", "destination site (required)")
	replicas := c.fs.Int("replicas", 1, "copies at the destination")
	out := c.fs.String("o", "-", "output exnode path")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 || *to == "" {
		return fmt.Errorf("route wants one exnode and -to <site>")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	s, ok := geo.LookupSite(*to)
	if !ok {
		return fmt.Errorf("unknown site %q", *to)
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	routed, err := t.Route(x, s.Loc, core.AugmentOptions{Replicas: *replicas})
	if err != nil {
		return err
	}
	log.Printf("routed to %s: %d mappings", s.Name, len(routed.Mappings))
	return writeExnode(*out, routed)
}

func cmdVerify(args []string) error {
	c := newFlags("verify")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("verify wants exactly one exnode")
	}
	x, err := readExnode(c.fs.Arg(0))
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	res := t.Verify(x)
	for _, e := range res.Entries {
		fmt.Printf("%3d %-12s %-8s [%d:%d)", e.Index, e.State, e.Mapping.Depot, e.Mapping.Offset, e.Mapping.End())
		if e.Err != nil {
			fmt.Printf("  %v", e.Err)
		}
		fmt.Println()
	}
	fmt.Println(res)
	if !res.Healthy() {
		os.Exit(1)
	}
	return nil
}

func cmdMaintain(args []string) error {
	c := newFlags("maintain")
	minCov := c.fs.Int("min-coverage", 2, "minimum available copies per extent")
	refreshBelow := c.fs.Duration("refresh-below", 24*time.Hour, "refresh when any segment expires within this window")
	refreshTo := c.fs.Duration("refresh-to", core.DefaultDuration, "new lifetime granted by refreshes and repairs")
	out := c.fs.String("o", "", "write the maintained exnode here (default: in place)")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("maintain wants exactly one exnode")
	}
	path := c.fs.Arg(0)
	x, err := readExnode(path)
	if err != nil {
		return err
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	maintained, rep, err := t.Maintain(x, core.MaintainOptions{
		MinCoverage:  *minCov,
		RefreshBelow: *refreshBelow,
		RefreshTo:    *refreshTo,
	})
	if traceOn && rep != nil {
		for _, e := range rep.Events {
			fmt.Fprintf(os.Stderr, "maintain %s\n", e)
		}
	}
	if err != nil {
		return err
	}
	log.Printf("maintain: refreshed %d, trimmed %d dead, added %d replicas; worst-extent coverage %d",
		rep.Refreshed, rep.TrimmedDead, rep.AddedReplicas, rep.MinCoverage)
	if *out == "" {
		*out = path
	}
	return writeExnode(*out, maintained)
}

func cmdHealth(args []string) error {
	c := newFlags("health")
	probes := c.fs.Int("probes", 3, "status probes per depot")
	c.fs.Parse(args)
	addrs := c.fs.Args()
	t, err := c.tools()
	if err != nil {
		return err
	}
	if len(addrs) == 0 {
		if *c.lbone == "" {
			return fmt.Errorf("health wants depot addresses or -lbone")
		}
		depots, err := t.LBone.Query(lbone.Requirements{})
		if err != nil {
			return fmt.Errorf("depot discovery: %w", err)
		}
		for _, d := range depots {
			addrs = append(addrs, d.Addr)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no depots to probe")
	}
	for i := 0; i < *probes; i++ {
		for _, addr := range addrs {
			if _, err := t.IBP.Status(addr); err != nil {
				log.Printf("probe %s: %v", addr, err)
			}
		}
	}
	fmt.Print(t.Health.Render())
	return nil
}

func cmdStatus(args []string) error {
	c := newFlags("status")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("status wants exactly one depot address")
	}
	t, err := c.tools()
	if err != nil {
		return err
	}
	st, err := t.IBP.Status(c.fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("depot %s: %d/%d bytes used (%d available), %d allocations, max duration %v\n",
		c.fs.Arg(0), st.UsedBytes, st.TotalBytes, st.AvailableBytes(), st.Allocations, st.MaxDuration)
	if m, err := t.IBP.Metrics(c.fs.Arg(0)); err == nil {
		fmt.Printf("ops: %d allocate, %d store (%d B in), %d load (%d B out), %d probe, %d extend, %d delete\n",
			m.Allocates, m.Stores, m.BytesIn, m.Loads, m.BytesOut, m.Probes, m.Extends, m.Deletes)
		fmt.Printf("health: %d errors, %d cap violations, %d reaped, %d restored, %d connections\n",
			m.Errors, m.Violations, m.Reaped, m.Restores, m.Connects)
	}
	return nil
}

// cmdMetrics fetches a depot's full operation-counter snapshot over the
// wire METRICS verb, in either a human listing or Prometheus text format.
func cmdMetrics(args []string) error {
	c := newFlags("metrics")
	prom := c.fs.Bool("prom", false, "print in Prometheus text exposition format")
	c.fs.Parse(args)
	if c.fs.NArg() != 1 {
		return fmt.Errorf("metrics wants exactly one depot address")
	}
	addr := c.fs.Arg(0)
	t, err := c.tools()
	if err != nil {
		return err
	}
	m, err := t.IBP.Metrics(addr)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		v    int64
	}{
		{"allocates", m.Allocates}, {"stores", m.Stores}, {"loads", m.Loads},
		{"probes", m.Probes}, {"extends", m.Extends}, {"deletes", m.Deletes},
		{"bytes_in", m.BytesIn}, {"bytes_out", m.BytesOut},
		{"errors", m.Errors}, {"reaped", m.Reaped}, {"connects", m.Connects},
		{"restores", m.Restores}, {"cap_violations", m.Violations},
	}
	if *prom {
		ms := make([]obs.Metric, len(rows))
		for i, r := range rows {
			ms[i] = obs.Metric{
				Name: "ibp_depot_" + r.name + "_total", Type: "counter",
				Help:  "Depot counter " + r.name + " (fetched via METRICS).",
				Value: float64(r.v),
			}
		}
		var sb strings.Builder
		obs.WriteMetrics(&sb, ms)
		fmt.Print(sb.String())
		return nil
	}
	fmt.Printf("depot %s counters:\n", addr)
	for _, r := range rows {
		fmt.Printf("  %-14s %d\n", r.name, r.v)
	}
	return nil
}

// cmdSlo renders SLO status. With a metrics address it fetches that
// daemon's /slo endpoint (an ibp-depot or stackmon metrics listener);
// without one it renders this invocation's local engine — mostly useful
// to inspect the declared objectives and burn-rate alert rules.
func cmdSlo(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit raw status JSON instead of the rendered report")
	fs.Parse(args)
	if fs.NArg() > 1 {
		return fmt.Errorf("slo wants at most one metrics address (host:port)")
	}
	st := sloEngine.Snapshot()
	if fs.NArg() == 1 {
		url := fs.Arg(0)
		if !strings.Contains(url, "://") {
			url = "http://" + url + "/slo"
		}
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		st = slo.Status{}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return fmt.Errorf("parsing %s: %w", url, err)
		}
	}
	if *asJSON {
		b, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Print(slo.Render(st))
	return nil
}
