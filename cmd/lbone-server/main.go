// Command lbone-server runs a Logistical Backbone registry: depots
// register themselves, clients query for depots by capacity, duration and
// proximity (paper §2.2).
//
// Usage:
//
//	lbone-server -listen :6767 -ttl 5m
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:6767", "address to listen on")
		ttl         = flag.Duration("ttl", 5*time.Minute, "depot liveness window (0 = never expire)")
		poll        = flag.Duration("poll", 0, "refresh depot capacities via STATUS at this interval (0 = off)")
		metricsAddr = flag.String("metrics-listen", "", "serve /metrics and /healthz over HTTP on this address (e.g. :9767; empty = off)")
		pprofOn     = flag.Bool("pprof", false, "also serve /debug/pprof on the metrics listener")
	)
	flag.Parse()

	s, err := lbone.ServeRegistry(*listen, lbone.ServerConfig{
		TTL:    *ttl,
		Logger: log.New(os.Stderr, "lbone: ", log.LstdFlags),
	})
	if err != nil {
		log.Fatalf("lbone-server: %v", err)
	}
	log.Printf("lbone-server: listening on %s (ttl %v)", s.Addr(), *ttl)
	if *metricsAddr != "" {
		mux := s.ObsMux()
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		go func() {
			log.Printf("lbone-server: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("lbone-server: metrics listener: %v", err)
			}
		}()
	}
	if *poll > 0 {
		p := s.StartPoller(ibp.NewClient(), *poll)
		defer p.Stop()
		log.Printf("lbone-server: polling depot capacities every %v", *poll)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("lbone-server: shutting down")
	if err := s.Close(); err != nil {
		log.Fatalf("lbone-server: close: %v", err)
	}
}
