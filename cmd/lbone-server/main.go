// Command lbone-server runs a Logistical Backbone registry: depots
// register themselves, clients query for depots by capacity, duration and
// proximity (paper §2.2).
//
// Usage:
//
//	lbone-server -listen :6767 -ttl 5m
//
// With -replicas the server joins a statically-configured replica group:
// it installs the listed view (every member runs with the same -replicas,
// -view-seq and -shards values) and additionally serves the quorum verbs
// — view-stamped registration, depot queries and the sharded exNode
// directory — alongside the classic single-registry protocol.
//
//	lbone-server -listen :6767 -replicas host1:6767,host2:6767,host3:6767
package main

import (
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/obs"
	"repro/internal/registry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:6767", "address to listen on")
		ttl         = flag.Duration("ttl", 5*time.Minute, "depot liveness window (0 = never expire)")
		poll        = flag.Duration("poll", 0, "refresh depot capacities via STATUS at this interval (0 = off)")
		metricsAddr = flag.String("metrics-listen", "", "serve /metrics and /healthz over HTTP on this address (e.g. :9767; empty = off)")
		pprofOn     = flag.Bool("pprof", false, "also serve /debug/pprof on the metrics listener")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON (default: human-readable text)")
		replicas    = flag.String("replicas", "", "comma-separated replica group membership (including this member); empty = classic single registry")
		viewSeq     = flag.Int64("view-seq", 1, "view sequence number of the static -replicas membership")
		shards      = flag.Int("shards", registry.DefaultShards, "exNode directory shard count (must match across the group)")
	)
	flag.Parse()

	logger := obs.NewLogger(obs.LogConfig{JSON: *logJSON, Component: "lbone-server"})
	var s *lbone.Server
	var err error
	if *replicas != "" {
		var rep *registry.Replica
		s, rep, err = registry.Serve(*listen, registry.Config{
			Members: lbone.SplitAddrs(*replicas),
			Seq:     *viewSeq,
			Shards:  *shards,
			TTL:     *ttl,
			Logger:  logger,
		})
		if err == nil {
			v := rep.View()
			logger.Info("replica group", "seq", v.Seq, "members", len(v.Members), "shards", v.Shards)
		}
	} else {
		s, err = lbone.ServeRegistry(*listen, lbone.ServerConfig{
			TTL:    *ttl,
			Logger: logger,
		})
	}
	if err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "addr", s.Addr(), "ttl", *ttl)
	if *metricsAddr != "" {
		mux := s.ObsMux()
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		ln, lerr := net.Listen("tcp", *metricsAddr)
		if lerr != nil {
			logger.Error("metrics listener", "err", lerr)
			os.Exit(1)
		}
		controlAddr := lbone.AdvertisedControlAddr(ln.Addr().String())
		go func() {
			logger.Info("metrics listening", "url", "http://"+controlAddr+"/metrics")
			if err := http.Serve(ln, mux); err != nil {
				logger.Error("metrics listener", "err", err)
			}
		}()
		// Self-register the control endpoint in this registry's own
		// control table (and, with -replicas, its peers'), so the obsd
		// aggregator scrapes the registry tier alongside the depots.
		self := lbone.NewClient(s.Addr())
		if *replicas != "" {
			self = lbone.NewClient(*replicas)
		}
		go self.AnnounceControl(lbone.ControlInfo{
			Addr: controlAddr, Component: "lbone-server", Name: s.Addr(),
		}, *ttl/2, logger, nil)
	}
	if *poll > 0 {
		p := s.StartPoller(ibp.NewClient(), *poll)
		defer p.Stop()
		logger.Info("polling depot capacities", "interval", *poll)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	if err := s.Close(); err != nil {
		logger.Error("close", "err", err)
		os.Exit(1)
	}
}
