// Command ibp-depot runs an IBP depot daemon: it inserts local storage
// into the network as time-limited, append-only byte arrays addressed by
// capabilities (paper §2.1).
//
// Usage:
//
//	ibp-depot -listen :6714 -capacity 1073741824 -dir /var/ibp \
//	          -secret-file /etc/ibp.secret -lbone host:6767 -name UTK1 -site UTK
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/depot"
	"repro/internal/geo"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:6714", "address to listen on")
		advertised  = flag.String("advertised", "", "address minted into capabilities (default: listen address)")
		capacity    = flag.Int64("capacity", 1<<30, "total bytes to serve")
		maxDuration = flag.Duration("max-duration", 30*24*time.Hour, "longest allocation lifetime granted")
		dir         = flag.String("dir", "", "directory for disk-backed storage (required for -backend file|pack)")
		backendKind = flag.String("backend", "", "storage backend: memory, file, or pack (default: file when -dir is set, else memory)")
		bundleCap   = flag.Int64("bundle-cap", depot.DefaultBundleCap, "pack backend: max reserved bytes per bundle file")
		secretFile  = flag.String("secret-file", "", "file holding the capability-signing secret (default: random per run)")
		lboneAddr   = flag.String("lbone", "", "L-Bone server to register with (optional)")
		name        = flag.String("name", "depot", "depot display name for the L-Bone")
		site        = flag.String("site", "UTK", "site name for proximity resolution (see internal/geo)")
		heartbeat   = flag.Duration("heartbeat", time.Minute, "L-Bone heartbeat interval")
		reapEvery   = flag.Duration("reap", time.Minute, "expired-allocation sweep interval")
		metricsAddr = flag.String("metrics-listen", "", "serve /metrics, /healthz, /trace/<id>, and /postmortem/<trace> over HTTP on this address (e.g. :9714; empty = off)")
		pprofOn     = flag.Bool("pprof", false, "also serve /debug/pprof on the metrics listener")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON (default: human-readable text)")
		pmDir       = flag.String("postmortem-dir", "", "write panic postmortem bundles to this directory (empty = keep in memory only)")
	)
	flag.Parse()

	recorder := obs.NewFlightRecorder(0)
	logger := obs.NewLogger(obs.LogConfig{JSON: *logJSON, Component: "ibp-depot", Recorder: recorder})
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	secret, err := loadSecret(*secretFile, logger)
	if err != nil {
		fatal("loading secret", err)
	}
	cfg := depot.Config{
		Advertised:    *advertised,
		Secret:        secret,
		Capacity:      *capacity,
		MaxDuration:   *maxDuration,
		Logger:        logger,
		Recorder:      recorder,
		PostmortemDir: *pmDir,
	}
	kind := *backendKind
	if kind == "" {
		if *dir != "" {
			kind = "file"
		} else {
			kind = "memory"
		}
	}
	switch kind {
	case "memory":
		// depot.Serve defaults to the in-memory backend.
	case "file":
		if *dir == "" {
			fatal("backend", fmt.Errorf("-backend file requires -dir"))
		}
		backend, err := depot.NewFileBackend(*dir)
		if err != nil {
			fatal("opening file backend", err)
		}
		cfg.Backend = backend
	case "pack":
		if *dir == "" {
			fatal("backend", fmt.Errorf("-backend pack requires -dir"))
		}
		backend, err := depot.NewPackBackend(*dir, *bundleCap)
		if err != nil {
			fatal("opening pack backend", err)
		}
		cfg.Backend = backend
		defer backend.Close()
	default:
		fatal("backend", fmt.Errorf("unknown backend %q (want memory, file, or pack)", kind))
	}
	d, err := depot.Serve(*listen, cfg)
	if err != nil {
		fatal("serve", err)
	}
	logger.Info("serving", "capacity_bytes", *capacity, "addr", d.Addr(), "advertised", d.Advertised())

	controlAddr := ""
	if *metricsAddr != "" {
		mux := d.ObsMux()
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("metrics listener", err)
		}
		controlAddr = lbone.AdvertisedControlAddr(ln.Addr().String())
		go func() {
			logger.Info("metrics listening", "url", "http://"+controlAddr+"/metrics")
			if err := http.Serve(ln, mux); err != nil {
				logger.Error("metrics listener", "err", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	// Periodic expired-allocation sweep.
	go func() {
		t := time.NewTicker(*reapEvery)
		defer t.Stop()
		for range t.C {
			if n := d.ReapExpired(); n > 0 {
				logger.Info("reaped expired allocations", "n", n)
			}
		}
	}()

	// Optional L-Bone registration + heartbeat.
	if *lboneAddr != "" {
		siteInfo, ok := geo.LookupSite(*site)
		if !ok {
			fatal("unknown site", fmt.Errorf("%q", *site))
		}
		client := lbone.NewClient(*lboneAddr)
		info := lbone.DepotInfo{
			Addr:        d.Advertised(),
			Name:        *name,
			Site:        siteInfo.Name,
			Loc:         siteInfo.Loc,
			Capacity:    *capacity,
			MaxDuration: *maxDuration,
		}
		if err := client.Register(info); err != nil {
			fatal("registering with L-Bone", err)
		}
		logger.Info("registered with L-Bone", "lbone", *lboneAddr, "name", *name, "site", siteInfo.Name)
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for range t.C {
				if err := client.Heartbeat(info.Addr); err != nil {
					logger.Warn("heartbeat failed", "err", err)
				}
			}
		}()
		// Announce the control endpoint too, so the obsd aggregator
		// discovers this depot's scrape surface through the same registry.
		if controlAddr != "" {
			go client.AnnounceControl(lbone.ControlInfo{
				Addr: controlAddr, Component: "ibp-depot", Name: *name,
			}, *heartbeat, logger, nil)
		}
	}

	<-stop
	logger.Info("shutting down")
	if err := d.Close(); err != nil {
		fatal("close", err)
	}
}

// loadSecret reads the signing secret, generating an ephemeral one when no
// file is configured (capabilities then die with the process, which is
// fine for testing).
func loadSecret(path string, logger *slog.Logger) ([]byte, error) {
	if path == "" {
		key, err := ibp.NewKey()
		if err != nil {
			return nil, err
		}
		logger.Warn("using an ephemeral secret; capabilities will not survive restarts")
		return []byte(key), nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading secret: %w", err)
	}
	if len(b) < 16 {
		return nil, fmt.Errorf("secret in %s is too short (%d bytes, want >= 16)", path, len(b))
	}
	return b, nil
}
