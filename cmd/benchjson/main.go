// Command benchjson converts `go test -bench` output into JSON. It reads
// the benchmark log on stdin, echoes it to stderr so progress stays
// visible, and writes a JSON array of results to stdout:
//
//	go test -bench 'UploadDownload' . | benchjson > BENCH_upload_download.json
//
// Each result carries name, iterations, ns_per_op, and — when the bench
// reports them — mb_per_s, bytes_per_op, allocs_per_op, and any custom
// metrics (vsec/dl, success%, ...) under "extra".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []result
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine handles one `go test -bench` result line, e.g.
//
//	BenchmarkUploadDownload/upload-8  100  10474025 ns/op  100.11 MB/s  12 B/op  3 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
	// The rest is (value, unit) pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}
