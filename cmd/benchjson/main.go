// Command benchjson converts `go test -bench` output into JSON. It reads
// the benchmark log on stdin, echoes it to stderr so progress stays
// visible, and writes a JSON array of results to stdout:
//
//	go test -bench 'UploadDownload' . | benchjson > BENCH_upload_download.json
//
// Each result carries name, iterations, ns_per_op, and — when the bench
// reports them — mb_per_s, bytes_per_op, allocs_per_op, and any custom
// metrics (vsec/dl, success%, ...) under "extra".
//
// With -check it doubles as a regression gate: after parsing it compares
// one metric of one bench against a committed baseline file and exits 1
// when the new value regresses by more than -max-regress (a fraction;
// 0.20 = 20%). Counting metrics like allocs/op barely jitter between
// runs, so a gate on them catches a reintroduced per-op allocation
// without the noise problems of gating on throughput:
//
//	go test -bench 'UploadDownload/download' -benchmem . \
//	    | benchjson -check BENCH_upload_download.json \
//	        -name UploadDownload/download -metric allocs_per_op \
//	        -max-regress 0.20 > /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	checkFile := flag.String("check", "", "baseline JSON file to gate against (empty: no gate)")
	checkName := flag.String("name", "", "bench name to compare (GOMAXPROCS suffix ignored)")
	checkMetric := flag.String("metric", "allocs_per_op", "metric to compare: ns_per_op, mb_per_s, bytes_per_op, allocs_per_op, or an extra key")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional regression before exiting 1")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []result
	seen := map[string]int{}
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		// `go test -count=N` repeats every bench N times; keep the run
		// with the lowest ns/op per name. On a shared machine exogenous
		// noise (steal time, writeback) contaminates whole runs at a
		// time, and the quietest run is the reproducible one — the same
		// reasoning that has timeit report the minimum. Keeping the
		// whole row (not per-metric minima) keeps its metrics coherent.
		if i, dup := seen[r.Name]; dup {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		seen[r.Name] = len(out)
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *checkFile != "" {
		if err := check(out, *checkFile, *checkName, *checkMetric, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// check compares one metric of one bench against the baseline file and
// returns an error when it regressed beyond the allowed fraction. For
// mb_per_s higher is better; for every other metric lower is better.
func check(results []result, baselinePath, name, metric string, allowed float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline []result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	base, ok := find(baseline, name)
	if !ok {
		return fmt.Errorf("baseline %s has no bench %q", baselinePath, name)
	}
	cur, ok := find(results, name)
	if !ok {
		return fmt.Errorf("current run has no bench %q", name)
	}
	bv, err := metricOf(base, metric)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cv, err := metricOf(cur, metric)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}
	if bv == 0 {
		return fmt.Errorf("baseline %s %s is zero; cannot compute regression", name, metric)
	}
	regress := cv/bv - 1 // lower is better: growth is regression
	if metric == "mb_per_s" {
		regress = 1 - cv/bv
	}
	if regress > allowed {
		return fmt.Errorf("%s %s regressed %.1f%% (baseline %.2f, now %.2f; allowed %.0f%%)",
			name, metric, 100*regress, bv, cv, 100*allowed)
	}
	fmt.Fprintf(os.Stderr, "benchjson: check ok: %s %s baseline %.2f, now %.2f (%+.1f%%, allowed +%.0f%%)\n",
		name, metric, bv, cv, 100*regress, 100*allowed)
	return nil
}

// find matches a bench by name. An exact match wins; otherwise a recorded
// name also matches with its trailing -GOMAXPROCS suffix stripped, so a
// query for "UploadDownload/download" finds "UploadDownload/download-8"
// from a multi-core machine. (The stripped form is only a fallback: bench
// names that legitimately end in digits, like SmallObject/live-1000000,
// are found by the exact match first.)
func find(rs []result, name string) (result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	for _, r := range rs {
		if i := strings.LastIndex(r.Name, "-"); i >= 0 && r.Name[:i] == name {
			if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				return r, true
			}
		}
	}
	return result{}, false
}

func metricOf(r result, metric string) (float64, error) {
	switch metric {
	case "ns_per_op":
		return r.NsPerOp, nil
	case "mb_per_s":
		return r.MBPerS, nil
	case "bytes_per_op":
		return float64(r.BytesPerOp), nil
	case "allocs_per_op":
		return float64(r.AllocsPerOp), nil
	default:
		if v, ok := r.Extra[metric]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("bench %s has no metric %q", r.Name, metric)
	}
}

// parseLine handles one `go test -bench` result line, e.g.
//
//	BenchmarkUploadDownload/upload-8  100  10474025 ns/op  100.11 MB/s  12 B/op  3 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Iterations: iters}
	// The rest is (value, unit) pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, sawNs
}
