// Command maintaind is the autonomous maintenance daemon: the service
// form of `xnd maintain`, scaled to a fleet. It walks the replicated
// exNode directory (its shard of it, when several daemons partition the
// namespace), scores every file's loss risk from the health scoreboard,
// an embedded availability monitor, and NWS forecasts, and runs
// prioritized Maintain passes — refresh expiring leases, trim dead
// mappings, re-replicate thin extents — through a worker pool that is
// rate-limited per depot so repair never starves user traffic.
//
// Usage:
//
//	maintaind -lbone r1:6767,r2:6767,r3:6767 \
//	          -shard-index 0 -shard-count 4 \
//	          -interval 30m -workers 4 -max-per-depot 2 \
//	          -min-coverage 2 -refresh-below 24h -refresh-to 240h \
//	          -metrics-listen :9791
//
// A fleet of N daemons runs with -shard-count N and distinct
// -shard-index values: each owns exactly the names its shard hashes to,
// with no coordination beyond the shared directory.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/health"
	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/nws"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/repaird"
	"repro/internal/slo"
	"repro/internal/stackmon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maintaind: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maintaind", flag.ExitOnError)
	var (
		lboneAddr    = fs.String("lbone", os.Getenv("XND_LBONE"), "registry replica set, comma-separated (or $XND_LBONE); directory walks and depot discovery go through majority quorums")
		siteName     = fs.String("site", "UTK", "this daemon's site for NWS series and proximity placement")
		shardIndex   = fs.Int("shard-index", 0, "this daemon's shard (0-based)")
		shardCount   = fs.Int("shard-count", 1, "total daemons partitioning the namespace")
		interval     = fs.Duration("interval", 30*time.Minute, "sweep cadence")
		workers      = fs.Int("workers", 4, "concurrent Maintain passes")
		maxPerDepot  = fs.Int("max-per-depot", 2, "concurrent repair passes touching any one depot")
		minCoverage  = fs.Int("min-coverage", 2, "redundancy floor each pass restores (also the durability SLI target)")
		refreshBelow = fs.Duration("refresh-below", 24*time.Hour, "refresh allocations expiring within this window")
		refreshTo    = fs.Duration("refresh-to", 0, "new lifetime granted by a refresh (0 = tool default)")
		riskFloor    = fs.Float64("risk-threshold", 0.05, "minimum risk score that queues a file")
		probeEvery   = fs.Duration("probe-interval", 5*time.Minute, "embedded availability monitor sweep cadence (0 = no monitor)")
		opTimeout    = fs.Duration("timeout", 30*time.Second, "per-operation timeout")
		metricsAddr  = fs.String("metrics-listen", "", "serve /metrics, /healthz, /report, /slo on this address (empty = off)")
		pprofOn      = fs.Bool("pprof", false, "also serve /debug/pprof on the metrics listener")
		logJSON      = fs.Bool("log-json", false, "log one JSON object per line instead of text")
	)
	fs.Parse(args)

	if *lboneAddr == "" {
		return fmt.Errorf("-lbone is required (the replicated directory is what maintaind maintains)")
	}
	site, ok := geo.LookupSite(*siteName)
	if !ok {
		return fmt.Errorf("unknown site %q", *siteName)
	}

	recorder := obs.NewFlightRecorder(0)
	logger := obs.NewLogger(obs.LogConfig{JSON: *logJSON, Component: "maintaind", Recorder: recorder})
	sloEngine := slo.New(slo.Config{Logger: logger})

	// One health scoreboard shared by every IBP consumer in the process:
	// the monitor's probes, the repair passes, and placement ranking all
	// see the same circuits.
	sb := health.New(health.Config{})
	client := ibp.NewClient(
		ibp.WithOpTimeout(*opTimeout),
		ibp.WithHealth(sb),
		ibp.WithObserver(slo.ObserveIBP(sloEngine)),
	)
	qc := registry.NewQuorumClient(*lboneAddr,
		registry.WithTimeouts(5*time.Second, *opTimeout),
		registry.WithObserver(slo.ObserveRegistry(sloEngine)),
	)
	tools := &core.Tools{
		IBP:       client,
		LBone:     qc,
		Directory: registry.NewDirectory(qc),
		NWS:       nws.NewService(nil, 256),
		Health:    sb,
		Site:      site.Name,
		Loc:       site.Loc,
		Logger:    logger,
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("shutting down")
		close(stop)
	}()

	cfg := repaird.Config{
		Tools:             tools,
		ShardIndex:        *shardIndex,
		ShardCount:        *shardCount,
		Interval:          *interval,
		Workers:           *workers,
		MaxRepairPerDepot: *maxPerDepot,
		RiskThreshold:     *riskFloor,
		SLO:               sloEngine,
		Recorder:          recorder,
		Logger:            logger,
		Maintain: core.MaintainOptions{
			MinCoverage:  *minCoverage,
			RefreshBelow: *refreshBelow,
			RefreshTo:    *refreshTo,
		},
	}

	// The embedded availability monitor probes the L-Bone depot set and
	// feeds the risk scorer its measured series (and, via the shared
	// scoreboard, keeps circuits fresh between repair passes).
	if *probeEvery > 0 {
		mon, err := stackmon.New(stackmon.Config{
			Client:   client,
			Interval: *probeEvery,
			Discover: func() []string {
				infos, err := qc.Query(lbone.Requirements{})
				if err != nil {
					logger.Warn("maintaind: depot discovery", "err", err)
					return nil
				}
				addrs := make([]string, len(infos))
				for i, d := range infos {
					addrs[i] = d.Addr
				}
				return addrs
			},
			Logf: log.Printf,
		})
		if err != nil {
			return err
		}
		cfg.Avail = mon
		go mon.Run(stop)
	}

	d, err := repaird.New(cfg)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		mux := d.ObsMux()
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		controlAddr := lbone.AdvertisedControlAddr(ln.Addr().String())
		go func() {
			log.Printf("metrics on http://%s/metrics", controlAddr)
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
		// Announce the control endpoint so obsd discovers this shard.
		go lbone.NewClient(*lboneAddr).AnnounceControl(lbone.ControlInfo{
			Addr:      controlAddr,
			Component: "maintaind",
			Name:      fmt.Sprintf("maintaind-%d", *shardIndex),
		}, *probeEvery, logger, stop)
	}

	log.Printf("maintaining shard %d/%d every %v (%d workers, %d repair slots per depot)",
		*shardIndex, *shardCount, *interval, *workers, *maxPerDepot)
	d.Run(stop)

	c := d.Counters()
	log.Printf("done: %d sweeps, %d passes (%d failed), %d refreshed, %d trimmed, %d replicas added, %d conflicts",
		c.Sweeps, c.Passes, c.PassFailures, c.Refreshed, c.TrimmedDead, c.ReplicasAdded, c.Conflicts)
	return nil
}
