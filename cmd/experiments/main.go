// Command experiments regenerates every table and figure of the paper's
// evaluation (§3) on the simulated testbed: Test 1 (exnode availability),
// Test 2 (availability and download times from three sites), Test 3
// (downloads from a heavily trimmed exnode), plus the L-Bone listing of
// Figure 2. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured numbers.
//
// Usage:
//
//	experiments -test all                # full paper-scale runs (minutes)
//	experiments -test 2 -rounds 100      # scaled-down Test 2
//	experiments -show lbone              # Figure 2 registry listing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/lbone"
)

func main() {
	var (
		which    = flag.String("test", "all", "which test to run: 1, 2, 3, all")
		rounds   = flag.Int("rounds", 0, "monitoring rounds (0 = paper scale)")
		size     = flag.Int64("size", 0, "file size in bytes (0 = paper scale)")
		interval = flag.Duration("interval", 0, "interval between rounds (0 = paper scale)")
		seed     = flag.Int64("seed", 42, "random seed for outages and jitter")
		show     = flag.String("show", "", "only print one artifact: lbone | replication")
		noNWS    = flag.Bool("no-nws", false, "disable NWS-guided downloads")
	)
	flag.Parse()

	if *show == "lbone" {
		showLBone(*seed)
		return
	}
	if *show == "replication" {
		runReplicationStudy(experiments.Config{
			Seed: *seed, Rounds: *rounds, FileSize: *size, Interval: *interval, UseNWS: !*noNWS,
		})
		return
	}

	cfg := experiments.Config{
		Seed:     *seed,
		Rounds:   *rounds,
		FileSize: *size,
		Interval: *interval,
		UseNWS:   !*noNWS,
	}
	switch *which {
	case "1":
		runTest1(cfg)
	case "2":
		runTest2(cfg)
	case "3":
		runTest3(cfg)
	case "all":
		runTest1(cfg)
		runTest2(cfg)
		runTest3(cfg)
	default:
		log.Fatalf("experiments: unknown -test %q", *which)
	}
}

func banner(s string) {
	fmt.Printf("\n%s\n%s\n\n", s, dashes(len(s)))
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '='
	}
	return string(b)
}

func runTest1(cfg experiments.Config) {
	banner("Test 1: Availability of Capabilities in an exNode (paper §3.1)")
	start := time.Now()
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	res, err := experiments.RunTest1(tb, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTest1(res))
	fmt.Fprintf(os.Stderr, "[test 1 simulated in %v wall-clock]\n", time.Since(start).Round(time.Millisecond))
}

func runTest2(cfg experiments.Config) {
	banner("Test 2: Availability and Download Times to Multiple Sites (paper §3.2)")
	start := time.Now()
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:                 cfg.Seed,
		HarvardDepotOverride: experiments.Test2HarvardIncident(72 * time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	res, err := experiments.RunTest2(tb, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTest2(res))
	fmt.Fprintf(os.Stderr, "[test 2 simulated in %v wall-clock]\n", time.Since(start).Round(time.Millisecond))
}

func runTest3(cfg experiments.Config) {
	banner("Test 3: Simulating Network Unavailability (paper §3.3)")
	start := time.Now()
	failFrom, end := experiments.Test3FailWindow(cfg)
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{
		Seed:                 cfg.Seed,
		StableLinks:          true,
		HarvardDepotOverride: experiments.Test3HarvardAvailability(failFrom, end),
		UCSB3Override:        experiments.Test3UCSB3Availability(failFrom, end),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	res, err := experiments.RunTest3(tb, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTest3(res))
	fmt.Fprintf(os.Stderr, "[test 3 simulated in %v wall-clock]\n", time.Since(start).Round(time.Millisecond))
}

func runReplicationStudy(cfg experiments.Config) {
	banner("Replication study: how much replication is enough? (paper §3.3 future work)")
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	res, err := experiments.RunReplicationStudy(tb, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderReplicationStudy(res))
}

func showLBone(seed int64) {
	tb, err := experiments.NewTestbed(experiments.TestbedConfig{Seed: seed, PerfectNetwork: true})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	tb.RegisterWiderLBone()
	fmt.Print(experiments.RenderLBone(tb.Registry.Query(lbone.Requirements{})))
}
