// Command stackmon is the network-storage availability monitor: a
// continuous re-run of the paper's three-day, 14-depot study (§3). It
// sweeps an L-Bone depot set on a fixed interval — STATUS probe plus an
// optional allocate/store/load/delete round — and serves the resulting
// time series as Prometheus metrics and paper-style availability reports.
//
// Usage:
//
//	stackmon run -lbone host:6767 -interval 5m -payload 65536 \
//	             -metrics-listen :9790 -state-out stackmon.json
//	stackmon run -depots host1:6714,host2:6714 -interval 1m
//	stackmon sim -duration 24h -interval 5m -outages "D02:6h-9h,D05:1h-3h" \
//	             -json study.json
//	stackmon report -in stackmon.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/ibp"
	"repro/internal/lbone"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/stackmon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stackmon: ")
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: stackmon <command> [flags]

commands:
  run     monitor a live depot set (static -depots list and/or -lbone discovery)
  sim     run a faultnet-simulated study on a virtual clock and print the report
  report  render a saved state file (-state-out of a run) as a markdown table`)
	os.Exit(2)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		depots      = fs.String("depots", "", "comma-separated depot addresses to monitor")
		lboneAddr   = fs.String("lbone", os.Getenv("XND_LBONE"), "L-Bone server for depot discovery (or $XND_LBONE)")
		interval    = fs.Duration("interval", stackmon.DefInterval, "sweep interval")
		payload     = fs.Int("payload", 64<<10, "data-round payload bytes (0 = probe-only)")
		allocFor    = fs.Duration("alloc-duration", stackmon.DefDuration, "data-round allocation lifetime")
		opTimeout   = fs.Duration("timeout", 30*time.Second, "per-operation timeout")
		metricsAddr = fs.String("metrics-listen", "", "serve /metrics, /healthz, /report on this address (empty = off)")
		pprofOn     = fs.Bool("pprof", false, "also serve /debug/pprof on the metrics listener")
		stateOut    = fs.String("state-out", "", "write the study (JSON, sample detail included) here on exit and every sweep")
		maxSamples  = fs.Int("max-samples", stackmon.DefMaxSamples, "retained samples per depot")
		sloOn       = fs.Bool("slo", false, "evaluate SLO burn-rate alerts each sweep and serve them at /slo")
	)
	fs.Parse(args)

	cfg := stackmon.Config{
		Client:   ibp.NewClient(ibp.WithOpTimeout(*opTimeout)),
		Interval: *interval, Payload: *payload, Duration: *allocFor,
		MaxSamples: *maxSamples,
		Logf:       log.Printf,
	}
	if *sloOn {
		cfg.SLO = slo.New(slo.Config{
			Objectives: slo.DefaultObjectives(),
			Bucket:     *interval,
			Logger:     obs.NewLogger(obs.LogConfig{Component: "stackmon"}),
		})
	}
	if *depots != "" {
		for _, a := range strings.Split(*depots, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Depots = append(cfg.Depots, a)
			}
		}
	}
	if *lboneAddr != "" {
		lb := lbone.NewClient(*lboneAddr)
		cfg.Discover = func() []string {
			infos, err := lb.List()
			if err != nil {
				log.Printf("L-Bone discovery: %v", err)
				return nil
			}
			addrs := make([]string, len(infos))
			for i, d := range infos {
				addrs[i] = d.Addr
			}
			return addrs
		}
	}
	mon, err := stackmon.New(cfg)
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
	}()

	if *metricsAddr != "" {
		mux := mon.ObsMux()
		if *pprofOn {
			obs.AttachPprof(mux)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		controlAddr := lbone.AdvertisedControlAddr(ln.Addr().String())
		go func() {
			log.Printf("metrics on http://%s/metrics", controlAddr)
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
		// Announce the control endpoint so obsd discovers the monitor.
		if *lboneAddr != "" {
			go lbone.NewClient(*lboneAddr).AnnounceControl(lbone.ControlInfo{
				Addr: controlAddr, Component: "stackmon", Name: "stackmon",
			}, *interval, nil, stop)
		}
	}

	log.Printf("monitoring every %v (payload %d bytes)", *interval, *payload)
	if *stateOut != "" {
		// Persist after every sweep so a crash loses at most one interval.
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(*interval):
					if err := writeStudy(*stateOut, mon.Snapshot(true)); err != nil {
						log.Printf("state-out: %v", err)
					}
				}
			}
		}()
	}
	mon.Run(stop)

	st := mon.Snapshot(true)
	if *stateOut != "" {
		if err := writeStudy(*stateOut, st); err != nil {
			return err
		}
		log.Printf("study written to %s", *stateOut)
	}
	fmt.Print(st.Markdown())
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	var (
		nDepots  = fs.Int("depots", 14, "simulated depot count")
		duration = fs.Duration("duration", 24*time.Hour, "virtual study length")
		interval = fs.Duration("interval", stackmon.DefInterval, "sweep interval")
		payload  = fs.Int("payload", 16<<10, "data-round payload bytes")
		probes   = fs.Bool("probe-only", false, "skip the store/load round")
		seed     = fs.Int64("seed", 1, "deterministic seed for link jitter")
		outages  = fs.String("outages", "", `scripted outages as "NAME:FROM-TO,..." offsets, e.g. "D02:6h-9h,D05:1h-3h"`)
		jsonOut  = fs.String("json", "", "also write the full study as JSON here")
		sloOn    = fs.Bool("slo", false, "evaluate SLO burn-rate alerts against the sweep results")
		sloOut   = fs.String("slo-out", "", "with -slo, write alert firings as JSON here")
		verbose  = fs.Bool("v", false, "log depot state transitions")
	)
	fs.Parse(args)

	cfg := stackmon.SimConfig{
		Duration: *duration, Interval: *interval,
		Payload: *payload, ProbeOnly: *probes, Seed: *seed,
	}
	if *sloOn || *sloOut != "" {
		cfg.Objectives = slo.DefaultObjectives()
	}
	if *nDepots != 14 {
		cfg.Depots = make([]string, *nDepots)
		for i := range cfg.Depots {
			cfg.Depots[i] = fmt.Sprintf("D%02d", i+1)
		}
	}
	var err error
	if cfg.Outages, err = parseOutages(*outages); err != nil {
		return err
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	start := time.Now()
	st, addrOf, engine, err := stackmon.RunSimSLO(cfg)
	if err != nil {
		return err
	}
	nameOf := map[string]string{}
	for name, addr := range addrOf {
		nameOf[addr] = name
	}
	for i := range st.Depots {
		if n := nameOf[st.Depots[i].Addr]; n != "" {
			st.Depots[i].Addr = n
		}
	}
	sort.Slice(st.Depots, func(i, j int) bool { return st.Depots[i].Addr < st.Depots[j].Addr })
	log.Printf("simulated %v of monitoring in %v wall time", *duration, time.Since(start).Round(time.Millisecond))
	fmt.Print(st.Markdown())
	if engine != nil {
		firings := engine.Firings()
		// Report alerts under depot names, not the synthetic sim addresses.
		for i := range firings {
			if n := nameOf[firings[i].Key]; n != "" {
				firings[i].Key = n
			}
		}
		log.Printf("slo: %d alert firing(s) over %v", len(firings), *duration)
		for _, f := range firings {
			resolved := "still firing"
			if !f.ResolvedAt.IsZero() {
				resolved = "resolved " + f.ResolvedAt.UTC().Format(time.RFC3339)
			}
			log.Printf("slo: [%s] %s/%s key=%s burn=%.1f fired %s, %s",
				f.Severity, f.Objective, f.Rule, f.Key, f.PeakBurn,
				f.FiredAt.UTC().Format(time.RFC3339), resolved)
		}
		if *sloOut != "" {
			b, err := json.MarshalIndent(firings, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*sloOut, append(b, '\n'), 0o644); err != nil {
				return err
			}
			log.Printf("slo: firings written to %s", *sloOut)
		}
	}
	if *jsonOut != "" {
		if err := writeStudy(*jsonOut, st); err != nil {
			return err
		}
		log.Printf("study written to %s", *jsonOut)
	}
	return nil
}

// parseOutages parses "NAME:FROM-TO,NAME:FROM-TO" where FROM/TO are
// Go durations offset from the study start.
func parseOutages(s string) ([]stackmon.SimOutage, error) {
	if s == "" {
		return nil, nil
	}
	var out []stackmon.SimOutage
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, window, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad outage %q, want NAME:FROM-TO", part)
		}
		fromS, toS, ok := strings.Cut(window, "-")
		if !ok {
			return nil, fmt.Errorf("bad outage window %q, want FROM-TO", window)
		}
		from, err1 := time.ParseDuration(fromS)
		to, err2 := time.ParseDuration(toS)
		if err1 != nil || err2 != nil || to <= from {
			return nil, fmt.Errorf("bad outage window %q", window)
		}
		out = append(out, stackmon.SimOutage{Depot: name, From: from, To: to})
	}
	return out, nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	in := fs.String("in", "", "study JSON file (a run's -state-out or a sim's -json)")
	asJSON := fs.Bool("json", false, "re-emit normalized JSON instead of markdown")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("report wants -in <study.json>")
	}
	b, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var st stackmon.Study
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("parsing %s: %w", *in, err)
	}
	if *asJSON {
		out, err := st.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(st.Markdown())
	return nil
}

func writeStudy(path string, st stackmon.Study) error {
	b, err := st.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
