// Command obsd is the fleet observability aggregator: one daemon that
// turns a stack of per-daemon control endpoints into a single pane of
// glass. It discovers every registered control endpoint through the
// L-Bone's control table (daemons self-register their metrics listener),
// scrapes each member's /metrics and /slo on an interval, and serves:
//
//	/metrics            obsd's own series plus fleet_ aggregates
//	/fleet/slo          every member's SLO snapshot + firing alerts
//	/fleet/report       operator report (JSON; ?format=md for markdown)
//	/fleet/trace/<id>   a cross-daemon trace joined into one timeline
//	/fleet/query        window functions over the retained fleet series
//	/fleet/series       time-series inventory + drop accounting
//	/fleet/budget       error-budget ledger with a pass|fail verdict
//	/fleet/attribution  per-layer/per-depot tail-latency breakdown
//	/healthz            liveness
//
// Every sweep also appends one sample per canonical fleet series into a
// bounded in-memory time-series store (-retention clamps how far back
// queries reach), so burn history survives between scrapes without any
// external TSDB.
//
// When a member's burn-rate alert transitions to firing, obsd captures
// that member's pprof heap (and optionally CPU) profiles into
// -profile-dir, alongside wherever postmortem bundles land.
//
// On SIGTERM/SIGINT obsd shuts down gracefully: it flushes the budget
// ledger (-budget-out) and operator report (-report-out) to disk and
// deregisters its own control endpoint before exiting.
//
// Usage:
//
//	obsd -lbone r1:6767,r2:6767,r3:6767 -listen :9790 \
//	     -interval 15s -retention 24h -budget-out FLEET_budget.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/lbone"
	"repro/internal/obs"
	"repro/internal/obsfleet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obsd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("obsd", flag.ExitOnError)
	var (
		lboneAddr     = fs.String("lbone", os.Getenv("XND_LBONE"), "registry replica set, comma-separated (or $XND_LBONE); the control table there is the member source")
		staticMembers = fs.String("static", "", "additional members as comma-separated host:port control addresses (scraped even without a registry)")
		listen        = fs.String("listen", ":9790", "serve the fleet view on this address")
		interval      = fs.Duration("interval", 15*time.Second, "sweep cadence")
		scrapeTimeout = fs.Duration("scrape-timeout", 10*time.Second, "per-member request timeout")
		retention     = fs.Duration("retention", 24*time.Hour, "fleet time-series retention: /fleet/query windows are clamped to this")
		budgetOut     = fs.String("budget-out", "", "write the error-budget ledger (FLEET_budget.json) here on shutdown (empty = off)")
		reportOut     = fs.String("report-out", "", "write the operator report (FLEET_report.json) here on shutdown (empty = off)")
		profileDir    = fs.String("profile-dir", "", "capture alert-triggered pprof profiles into this directory (empty = off)")
		cpuSeconds    = fs.Int("cpu-seconds", 0, "CPU profile length for alert-triggered capture (0 = heap only)")
		pprofOn       = fs.Bool("pprof", false, "also serve /debug/pprof on the listener")
		logJSON       = fs.Bool("log-json", false, "log one JSON object per line instead of text")
	)
	fs.Parse(args)

	logger := obs.NewLogger(obs.LogConfig{JSON: *logJSON, Component: "obsd"})

	cfg := obsfleet.Config{
		Interval:          *interval,
		ScrapeTimeout:     *scrapeTimeout,
		Retention:         *retention,
		ProfileDir:        *profileDir,
		CPUProfileSeconds: *cpuSeconds,
		Logger:            logger,
	}
	var ctl *lbone.Client
	if *lboneAddr != "" {
		ctl = lbone.NewClient(*lboneAddr)
		cfg.Source = ctl
	}
	for _, addr := range strings.Split(*staticMembers, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			cfg.Static = append(cfg.Static, lbone.ControlInfo{
				Addr: addr, Component: "static", Name: addr,
			})
		}
	}
	if cfg.Source == nil && len(cfg.Static) == 0 {
		return errors.New("no member source: set -lbone (control-table discovery) or -static")
	}

	agg := obsfleet.New(cfg)
	mux := agg.Mux()
	if *pprofOn {
		obs.AttachPprof(mux)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	go func() {
		log.Printf("fleet view on http://%s/fleet/report", ln.Addr())
		if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("listener: %v", err)
		}
	}()

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("shutting down")
		close(stop)
	}()

	// obsd is a fleet member too: announce its own control endpoint so a
	// peer aggregator (or a fleet of one pane each) can scrape it.
	selfAddr := lbone.AdvertisedControlAddr(ln.Addr().String())
	if ctl != nil {
		go ctl.AnnounceControl(lbone.ControlInfo{
			Addr: selfAddr, Component: "obsd", Name: "obsd",
		}, *interval, logger, stop)
	}

	log.Printf("sweeping every %v (retention %v)", *interval, *retention)
	agg.Run(stop)

	// Graceful shutdown: flush the shutdown artifacts, deregister, close.
	if *budgetOut != "" {
		if err := agg.WriteBudget(*budgetOut); err != nil {
			log.Printf("budget flush: %v", err)
		} else {
			log.Printf("budget ledger written to %s", *budgetOut)
		}
	}
	if *reportOut != "" {
		if err := writeReport(agg, *reportOut); err != nil {
			log.Printf("report flush: %v", err)
		} else {
			log.Printf("fleet report written to %s", *reportOut)
		}
	}
	if ctl != nil {
		if err := ctl.DeregisterControl(selfAddr); err != nil {
			log.Printf("deregister: %v", err)
		}
	}
	ln.Close()
	return nil
}

// writeReport renders the operator report as JSON into path.
func writeReport(agg *obsfleet.Aggregator, path string) error {
	data, err := json.MarshalIndent(agg.FleetReport(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
